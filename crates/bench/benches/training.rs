//! Criterion bench: data-parallel training throughput.
//!
//! Times one training epoch of `Trainer::fit` (sequential, one Adam step
//! per task) against `Trainer::fit_parallel_on` (one Adam step per
//! epoch) at 1, 2, 4, and 8 pool workers on a synthetic multi-graph
//! task set, and writes a machine-readable summary (graphs/sec and
//! epoch wall-clock per configuration) to `target/training_bench.json`.
//!
//! Real speedup requires real cores: the summary records
//! `hardware_threads` so a 1-core CI container's ~1.0x ratios are not
//! mistaken for a regression.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragraph_gnn::{GnnKind, GnnModel, GraphSchema, GraphTask, ModelConfig, TrainConfig, Trainer};
use paragraph_runtime::Pool;
use paragraph_tensor::Tensor;
use serde_json::json;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn quick_mode() -> bool {
    // `cargo test` invokes harness-less bench targets with `--test`.
    std::env::args().any(|a| a == "--test")
}

/// Average in-degree of the labelled nodes. Circuit nets fan into
/// several device terminals (gate/source/drain across the devices they
/// drive), so the bench aggregates `DEGREE` sources per labelled node
/// rather than the 1-2 a toy chain would have — per-edge kernel cost is
/// what fusion amortises, and starving the graphs of edges would
/// understate (or overstate) nothing but measure the wrong workload.
const DEGREE: usize = 8;

/// Synthetic neighbour-sum task set: `graphs` bipartite graphs whose
/// type-1 nodes are labelled with the sum of their [`DEGREE`] type-0
/// in-neighbour features.
fn task_set(graphs: usize, n1: usize) -> (GraphSchema, Vec<GraphTask>) {
    let schema = GraphSchema {
        node_feat_dims: vec![1, 1],
        num_edge_types: 2,
    };
    let mut tasks = Vec::with_capacity(graphs);
    for g_idx in 0..graphs {
        let n0 = 2 * n1;
        let mut types = vec![0u16; n0];
        types.extend(vec![1u16; n1]);
        let mut g = paragraph_gnn::HeteroGraph::new(&schema, types);
        let feats: Vec<f32> = (0..n0)
            .map(|i| ((i * 7 + g_idx * 13) % 5) as f32 * 0.2)
            .collect();
        g.set_features(0, Tensor::from_col(&feats));
        g.set_features(1, Tensor::zeros(n1, 1));
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut labels = Vec::new();
        for j in 0..n1 {
            let mut sum = 0.0;
            for d in 0..DEGREE {
                let k = (2 * j + 3 * d) % n0;
                src.push(k as u32);
                dst.push((n0 + j) as u32);
                sum += feats[k];
            }
            labels.push(sum);
        }
        g.set_edges(0, src.clone(), dst.clone());
        g.set_edges(1, dst, src);
        let nodes: Vec<u32> = (n0..n0 + n1).map(|i| i as u32).collect();
        tasks.push(GraphTask::new(g, nodes, Tensor::from_col(&labels)));
    }
    (schema, tasks)
}

fn fresh_model(schema: &GraphSchema) -> GnnModel {
    let mut cfg = ModelConfig::new(GnnKind::ParaGraph);
    cfg.embed_dim = 16;
    cfg.layers = 2;
    cfg.fc_layers = 2;
    GnnModel::new(cfg, schema)
}

fn train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 0.01,
        lr_decay: 0.98,
        loss_target: None,
        graphs_per_batch: 1,
    }
}

/// Wall-clock for `epochs` epochs of sequential `fit`.
fn time_sequential(schema: &GraphSchema, tasks: &[GraphTask], epochs: usize) -> f64 {
    let mut model = fresh_model(schema);
    let mut trainer = Trainer::new(train_config(epochs));
    let start = Instant::now();
    let history = trainer.fit(&mut model, tasks);
    assert_eq!(history.len(), epochs);
    start.elapsed().as_secs_f64()
}

/// Wall-clock for `epochs` epochs of `fit_parallel_on` with `workers`
/// pool threads.
fn time_parallel(schema: &GraphSchema, tasks: &[GraphTask], epochs: usize, workers: usize) -> f64 {
    let pool = Pool::new(workers);
    let mut model = fresh_model(schema);
    let mut trainer = Trainer::new(train_config(epochs));
    let start = Instant::now();
    let history = trainer.fit_parallel_on(&mut model, tasks, &pool);
    assert_eq!(history.len(), epochs);
    start.elapsed().as_secs_f64()
}

/// Wall-clock for `epochs` epochs of `fit` with tasks folded into
/// block-diagonal batches of `graphs_per_batch`.
fn time_batched(
    schema: &GraphSchema,
    tasks: &[GraphTask],
    epochs: usize,
    graphs_per_batch: usize,
) -> f64 {
    let mut model = fresh_model(schema);
    let mut trainer = Trainer::new(TrainConfig {
        graphs_per_batch,
        ..train_config(epochs)
    });
    let start = Instant::now();
    let history = trainer.fit(&mut model, tasks);
    assert_eq!(history.len(), epochs);
    start.elapsed().as_secs_f64()
}

/// Wall-clock for `epochs` epochs of the pre-fusion training loop: the
/// same per-task Adam schedule as `fit`, but forward/backward through
/// `paragraph_gnn::reference` (composed gather/scatter/softmax
/// primitives instead of fused kernels). This is the pre-PR baseline
/// the fused `graphs_per_sec` numbers are measured against.
fn time_composed_reference(schema: &GraphSchema, tasks: &[GraphTask], epochs: usize) -> f64 {
    use paragraph_tensor::{Adam, Tape};
    let mut model = fresh_model(schema);
    let mut opt = Adam::new(0.01);
    let start = Instant::now();
    for epoch in 0..epochs {
        opt.lr = 0.01 * 0.98_f32.powi(epoch as i32);
        for task in tasks {
            let mut tape = Tape::new();
            let pred = paragraph_gnn::reference::predict_nodes(
                &model,
                &mut tape,
                &task.graph,
                &task.nodes,
            );
            let target = tape.constant(task.labels.clone());
            let loss = tape.mse_loss(pred, target);
            let grads = tape.backward(loss);
            opt.step(model.params_mut(), &grads.param_grads(&tape));
        }
    }
    start.elapsed().as_secs_f64()
}

/// Criterion-visible timings (one epoch per iteration).
fn bench_training(c: &mut Criterion) {
    let (schema, tasks) = if quick_mode() {
        task_set(4, 8)
    } else {
        task_set(8, 128)
    };
    let mut group = c.benchmark_group("training_epoch");
    group.sample_size(10);
    group.bench_function("fit_sequential", |bench| {
        bench.iter(|| time_sequential(&schema, &tasks, 1));
    });
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("fit_parallel", workers),
            &workers,
            |bench, &w| {
                bench.iter(|| time_parallel(&schema, &tasks, 1, w));
            },
        );
    }
    group.finish();
}

/// Steady-state measurement + JSON summary.
fn write_summary(_c: &mut Criterion) {
    let quick = quick_mode();
    let (schema, tasks) = if quick {
        task_set(4, 8)
    } else {
        task_set(8, 128)
    };
    let epochs = if quick { 2 } else { 20 };
    let graphs = tasks.len();

    let seq_secs = time_sequential(&schema, &tasks, epochs);
    let seq_epoch_ms = seq_secs * 1e3 / epochs as f64;
    let seq_gps = (graphs * epochs) as f64 / seq_secs;

    let composed_secs = time_composed_reference(&schema, &tasks, epochs);
    let composed_gps = (graphs * epochs) as f64 / composed_secs;
    println!(
        "training summary: composed reference {:.2} ms/epoch ({composed_gps:.1} graphs/sec); \
         fused fit speedup {:.2}x",
        composed_secs * 1e3 / epochs as f64,
        composed_secs / seq_secs
    );

    let batch_size = 4;
    let batched_secs = time_batched(&schema, &tasks, epochs, batch_size);
    let batched_gps = (graphs * epochs) as f64 / batched_secs;
    println!(
        "training summary: batched fit (graphs_per_batch={batch_size}) {:.2} ms/epoch \
         ({batched_gps:.1} graphs/sec; {:.2}x vs composed reference)",
        batched_secs * 1e3 / epochs as f64,
        composed_secs / batched_secs
    );

    let mut parallel_rows = Vec::new();
    for workers in WORKER_COUNTS {
        let secs = time_parallel(&schema, &tasks, epochs, workers);
        let epoch_ms = secs * 1e3 / epochs as f64;
        let gps = (graphs * epochs) as f64 / secs;
        println!(
            "training summary: fit_parallel workers={workers} epoch={epoch_ms:.2} ms \
             ({gps:.1} graphs/sec; sequential fit {seq_epoch_ms:.2} ms, {seq_gps:.1} graphs/sec; \
             speedup {:.2}x)",
            seq_secs / secs
        );
        parallel_rows.push(json!({
            "workers": workers,
            "epoch_ms": epoch_ms,
            "graphs_per_sec": gps,
            "speedup_vs_sequential_fit": seq_secs / secs,
        }));
    }

    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let summary = json!({
        "bench": "training",
        "quick_mode": quick,
        "hardware_threads": hardware_threads,
        "graphs": graphs,
        "epochs_timed": epochs,
        "sequential_fit": {
            "epoch_ms": seq_epoch_ms,
            "graphs_per_sec": seq_gps,
        },
        "composed_reference": {
            "epoch_ms": composed_secs * 1e3 / epochs as f64,
            "graphs_per_sec": composed_gps,
            "fused_fit_speedup": composed_secs / seq_secs,
        },
        "batched_fit": {
            "graphs_per_batch": batch_size,
            "epoch_ms": batched_secs * 1e3 / epochs as f64,
            "graphs_per_sec": batched_gps,
            "speedup_vs_composed": composed_secs / batched_secs,
        },
        "fit_parallel": parallel_rows,
    });

    let target_dir = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{target_dir}/training_bench.json");
    match serde_json::to_string_pretty(&summary) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("training bench: could not write {path}: {e}");
            } else {
                println!("training summary written to {path}");
            }
        }
        Err(e) => eprintln!("training bench: could not serialise summary: {e}"),
    }
}

criterion_group!(benches, bench_training, write_summary);
criterion_main!(benches);
