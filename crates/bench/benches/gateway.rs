//! Criterion bench: end-to-end throughput of the sharded gateway over
//! real TCP — keep-alive JSON-lines clients against 1, 2, and
//! all-cores shard counts, with the legacy thread-per-connection
//! server as the baseline.
//!
//! Besides the criterion timings, a machine-readable JSON summary
//! (requests/second plus p50/p95/p99 latency per configuration) is
//! printed to stdout and written to `target/gateway_bench.json`,
//! unless the harness runs in `--test` mode.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use paragraph::prelude::*;
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;
use paragraph_serve::{
    Gateway, GatewayConfig, GatewayHandle, LoadedModels, ModelRegistry, Server, ServerHandle,
    Service, ServiceConfig,
};
use serde_json::json;

const TRAIN_NETLIST: &str = "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n";
const REQUEST_NETLIST: &str =
    "mp z a vdd vdd pch nf=2\nmn z a vss vss nch\nmp2 y z vdd vdd pch\nmn2 y z vss vss nch\n.end\n";
const CLIENTS: usize = 8;

fn trained_members() -> Vec<(String, TargetModel)> {
    let circuit = parse_spice(TRAIN_NETLIST).unwrap().flatten().unwrap();
    let mut train = vec![PreparedCircuit::new(
        "seed",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    [("cap_1f", 1e-15), ("cap_10f", 10e-15)]
        .into_iter()
        .map(|(name, mv)| {
            let mut fit = FitConfig::quick(GnnKind::Gcn);
            fit.epochs = 2;
            fit.embed_dim = 4;
            fit.layers = 1;
            let model = TargetModel::train(&train, Target::Cap, Some(mv), fit, &norm).0;
            (name.to_owned(), model)
        })
        .collect()
}

fn registry() -> Arc<ModelRegistry> {
    let snapshot = LoadedModels::from_models(trained_members()).unwrap();
    Arc::new(ModelRegistry::from_snapshot(snapshot))
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 128,
        cache_capacity: 64,
        ..ServiceConfig::default()
    }
}

fn start_gateway(shards: usize) -> GatewayHandle {
    let config = GatewayConfig {
        shards,
        service: service_config(),
        ..GatewayConfig::default()
    };
    Gateway::bind("127.0.0.1:0", registry(), config)
        .unwrap()
        .spawn()
}

fn start_legacy() -> ServerHandle {
    let service = Arc::new(Service::new(registry(), service_config()));
    Server::bind("127.0.0.1:0", service).unwrap().spawn()
}

fn predict_line() -> String {
    format!(
        r#"{{"op": "predict", "id": 1, "netlist": "{}"}}{}"#,
        REQUEST_NETLIST.replace('\n', "\\n"),
        "\n"
    )
}

struct LineClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LineClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self {
            writer: stream,
            reader,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read");
        assert!(n > 0, "server dropped the connection");
        response
    }
}

fn bench_gateway(c: &mut Criterion) {
    let line = predict_line();
    let mut group = c.benchmark_group("gateway");
    group.sample_size(20);

    // Cache-hit round trip over one keep-alive connection: the
    // per-request floor of the evented path (sniff, parse, submit,
    // poll, encode, flush).
    let handle = start_gateway(1);
    let mut client = LineClient::connect(handle.addr());
    let warm = client.roundtrip(&line);
    assert!(warm.contains("\"ok\":true"), "warmup failed: {warm}");
    group.bench_function("cache_hit_roundtrip_1shard", |b| {
        b.iter(|| client.roundtrip(std::hint::black_box(&line)))
    });
    drop(client);
    handle.shutdown();
    group.finish();
}

/// `CLIENTS` keep-alive connections hammer `addr` for `seconds`;
/// returns total served plus merged per-request latencies in µs.
fn measure(addr: SocketAddr, seconds: f64) -> (u64, Vec<u64>) {
    let line = predict_line();
    let lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let line = &line;
                scope.spawn(move || {
                    let mut client = LineClient::connect(addr);
                    // Warm this connection (and the shard cache).
                    let first = client.roundtrip(line);
                    assert!(first.contains("\"ok\":true"), "{first}");
                    let mut lat = Vec::with_capacity(4096);
                    let start = Instant::now();
                    while start.elapsed().as_secs_f64() < seconds {
                        let t = Instant::now();
                        let response = client.roundtrip(line);
                        lat.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                        debug_assert!(response.contains("\"ok\":true"), "{response}");
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged: Vec<u64> = lat.into_iter().flatten().collect();
    merged.sort_unstable();
    (merged.len() as u64, merged)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn json_summary() {
    let window = 1.0;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut shard_counts = vec![1_usize, 2];
    if !shard_counts.contains(&cores) {
        shard_counts.push(cores);
    }

    let mut configs = Vec::new();

    let legacy = start_legacy();
    let (served, lat) = measure(legacy.addr(), window);
    legacy.shutdown();
    configs.push(json!({
        "config": "legacy_server",
        "shards": null,
        "requests_served": served,
        "requests_per_second": served as f64 / window,
        "latency_us": {
            "p50": quantile(&lat, 0.50),
            "p95": quantile(&lat, 0.95),
            "p99": quantile(&lat, 0.99),
        },
    }));

    for &shards in &shard_counts {
        let handle = start_gateway(shards);
        let (served, lat) = measure(handle.addr(), window);
        handle.shutdown();
        configs.push(json!({
            "config": format!("gateway_{shards}_shards"),
            "shards": shards,
            "requests_served": served,
            "requests_per_second": served as f64 / window,
            "latency_us": {
                "p50": quantile(&lat, 0.50),
                "p95": quantile(&lat, 0.95),
                "p99": quantile(&lat, 0.99),
            },
        }));
    }

    let results = json!({
        "bench": "gateway",
        "window_seconds": window,
        "clients": CLIENTS,
        "available_parallelism": cores,
        "configs": configs,
    });
    let text = serde_json::to_string_pretty(&results).expect("serialisable");
    println!("{text}");
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/gateway_bench.json", &text);
}

criterion_group!(benches, bench_gateway);

fn main() {
    benches();
    if !std::env::args().any(|a| a == "--test") {
        json_summary();
    }
}
