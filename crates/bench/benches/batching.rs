//! Criterion bench: continuous micro-batching under cache-miss load.
//!
//! Keep-alive JSON-lines clients hammer a sharded gateway whose
//! prediction cache is disabled, so every request runs a real forward
//! pass. The sweep crosses admission-window sizes (off / 100µs /
//! 250µs), shard counts (1 and 2), and compiled-path precisions
//! (f32 and int8); each cell reports requests/second plus p50/p95/p99
//! latency, and window-on cells also report their throughput and p95
//! ratios against the window-off baseline at the same shard count and
//! precision.
//!
//! Besides the criterion timings, the machine-readable summary is
//! printed to stdout and written to `target/batching_bench.json`,
//! unless the harness runs in `--test` mode.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use paragraph::prelude::*;
use paragraph::{set_precision_default, Precision};
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;
use paragraph_serve::{
    Gateway, GatewayConfig, GatewayHandle, LoadedModels, ModelRegistry, ServiceConfig,
};
use serde_json::json;

const TRAIN_NETLIST: &str = "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n";
/// A 16-stage inverter chain: enough nodes that the forward pass (not
/// request parsing) dominates each cache miss, which is the regime the
/// admission window targets.
fn request_netlist() -> String {
    let mut s = String::new();
    for i in 0..16 {
        let (inp, out) = (format!("n{i}"), format!("n{}", i + 1));
        s.push_str(&format!("mp{i} {out} {inp} vdd vdd pch nf=2\n"));
        s.push_str(&format!("mn{i} {out} {inp} vss vss nch\n"));
    }
    s.push_str(".end\n");
    s
}
const CLIENTS: usize = 8;
const WINDOWS_US: [u64; 3] = [0, 250, 500];
const SHARD_COUNTS: [usize; 2] = [1, 2];
const PRECISIONS: [Precision; 2] = [Precision::F32, Precision::Int8];

fn trained_members() -> Vec<(String, TargetModel)> {
    let circuit = parse_spice(TRAIN_NETLIST).unwrap().flatten().unwrap();
    let mut train = vec![PreparedCircuit::new(
        "seed",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    [("cap_1f", 1e-15), ("cap_10f", 10e-15)]
        .into_iter()
        .map(|(name, mv)| {
            let mut fit = FitConfig::quick(GnnKind::Gcn);
            fit.epochs = 2;
            fit.embed_dim = 48;
            fit.layers = 3;
            let model = TargetModel::train(&train, Target::Cap, Some(mv), fit, &norm).0;
            (name.to_owned(), model)
        })
        .collect()
}

fn registry() -> Arc<ModelRegistry> {
    let snapshot = LoadedModels::from_models(trained_members()).unwrap();
    Arc::new(ModelRegistry::from_snapshot(snapshot))
}

/// Cache off: every request is a miss, so the window is the only thing
/// standing between the gateway and one forward pass per request.
fn service_config(window_us: u64) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        max_batch: 16,
        queue_capacity: 128,
        cache_capacity: 0,
        batch_window: Duration::from_micros(window_us),
        ..ServiceConfig::default()
    }
}

fn start_gateway(registry: Arc<ModelRegistry>, shards: usize, window_us: u64) -> GatewayHandle {
    let config = GatewayConfig {
        shards,
        service: service_config(window_us),
        ..GatewayConfig::default()
    };
    Gateway::bind("127.0.0.1:0", registry, config)
        .unwrap()
        .spawn()
}

fn predict_line() -> String {
    format!(
        r#"{{"op": "predict", "id": 1, "netlist": "{}"}}{}"#,
        request_netlist().replace('\n', "\\n"),
        "\n"
    )
}

struct LineClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LineClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self {
            writer: stream,
            reader,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("write");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read");
        assert!(n > 0, "server dropped the connection");
        response
    }
}

fn bench_batching(c: &mut Criterion) {
    let line = predict_line();
    let mut group = c.benchmark_group("batching");
    group.sample_size(10);

    // Cache-miss round trip with the window off vs on: the lone-client
    // view of the admission cost (a solo request pays the window).
    for window_us in [0_u64, 100] {
        let handle = start_gateway(registry(), 1, window_us);
        let mut client = LineClient::connect(handle.addr());
        let warm = client.roundtrip(&line);
        assert!(warm.contains("\"ok\":true"), "warmup failed: {warm}");
        group.bench_function(format!("miss_roundtrip_window_{window_us}us"), |b| {
            b.iter(|| client.roundtrip(std::hint::black_box(&line)))
        });
        drop(client);
        handle.shutdown();
    }
    group.finish();
}

/// `CLIENTS` keep-alive connections hammer `addr` for `seconds`;
/// returns total served plus merged per-request latencies in µs.
fn measure(addr: SocketAddr, seconds: f64) -> (u64, Vec<u64>) {
    let line = predict_line();
    let lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let line = &line;
                scope.spawn(move || {
                    let mut client = LineClient::connect(addr);
                    // Warm this connection (compile the model lazily).
                    let first = client.roundtrip(line);
                    assert!(first.contains("\"ok\":true"), "{first}");
                    let mut lat = Vec::with_capacity(4096);
                    let start = Instant::now();
                    while start.elapsed().as_secs_f64() < seconds {
                        let t = Instant::now();
                        let response = client.roundtrip(line);
                        lat.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                        debug_assert!(response.contains("\"ok\":true"), "{response}");
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged: Vec<u64> = lat.into_iter().flatten().collect();
    merged.sort_unstable();
    (merged.len() as u64, merged)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn json_summary() {
    let window_seconds = 2.0;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut configs = Vec::new();
    for &precision in &PRECISIONS {
        // The compiled path picks the process-wide default lazily at
        // first compile, so pin it before this precision's registry
        // serves anything. One registry per precision: models compile
        // once and are shared across the shard/window sweep.
        set_precision_default(precision);
        let registry = registry();
        for &shards in &SHARD_COUNTS {
            let mut baseline: Option<(f64, u64)> = None;
            for &window_us in &WINDOWS_US {
                let handle = start_gateway(Arc::clone(&registry), shards, window_us);
                let (served, lat) = measure(handle.addr(), window_seconds);
                handle.shutdown();
                let rps = served as f64 / window_seconds;
                let p95 = quantile(&lat, 0.95);
                if window_us == 0 {
                    baseline = Some((rps, p95));
                }
                let (vs_throughput, vs_p95) = match baseline {
                    Some((base_rps, base_p95)) if window_us > 0 && base_rps > 0.0 => (
                        Some(rps / base_rps),
                        (base_p95 > 0).then(|| p95 as f64 / base_p95 as f64),
                    ),
                    _ => (None, None),
                };
                configs.push(json!({
                    "config": format!(
                        "{}_{}shard_window_{}us",
                        precision.name(), shards, window_us
                    ),
                    "precision": precision.name(),
                    "shards": shards,
                    "window_us": window_us,
                    "requests_served": served,
                    "requests_per_second": rps,
                    "latency_us": {
                        "p50": quantile(&lat, 0.50),
                        "p95": p95,
                        "p99": quantile(&lat, 0.99),
                    },
                    "throughput_vs_unwindowed": vs_throughput,
                    "p95_vs_unwindowed": vs_p95,
                }));
            }
        }
    }

    let results = json!({
        "bench": "batching",
        "note": "flops are conserved under batching; the windowed win comes from \
    per-pass amortization and fewer scheduler round-trips, so ratios scale \
    with available cores — single-core hosts mostly show the p95 benefit",
        "window_seconds": window_seconds,
        "clients": CLIENTS,
        "available_parallelism": cores,
        "configs": configs,
    });
    let text = serde_json::to_string_pretty(&results).expect("serialisable");
    println!("{text}");
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/batching_bench.json", &text);
}

criterion_group!(benches, bench_batching);

fn main() {
    benches();
    if !std::env::args().any(|a| a == "--test") {
        json_summary();
    }
}
