//! Criterion bench: forward + backward pass of each GNN layer kind
//! (Table III + Algorithm 1) on a mid-size circuit graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paragraph::{circuit_schema, fit_norm, normalize_circuits, PreparedCircuit, Target};
use paragraph_circuitgen::{compose_chip, FAMILY_ANALOG};
use paragraph_gnn::{GnnKind, GnnModel, ModelConfig};
use paragraph_layout::LayoutConfig;
use paragraph_tensor::{Tape, Tensor};

fn prepared() -> PreparedCircuit {
    let circuit = compose_chip("bench", 5, FAMILY_ANALOG, 40);
    let mut pcs = vec![PreparedCircuit::new(
        "bench",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&pcs);
    normalize_circuits(&mut pcs, &norm);
    pcs.pop().expect("one circuit")
}

fn bench_forward_backward(c: &mut Criterion) {
    let pc = prepared();
    let labels = pc.labels(Target::Cap, None);
    let nodes = std::sync::Arc::new(labels.nodes.clone());
    let targets = Tensor::from_col(&labels.scaled);

    let mut group = c.benchmark_group("layer_forward_backward");
    group.sample_size(20);
    for kind in GnnKind::all() {
        let mut cfg = ModelConfig::new(kind);
        cfg.layers = 2;
        let model = GnnModel::new(cfg, &circuit_schema());
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &model,
            |b, model| {
                b.iter(|| {
                    let mut tape = Tape::new();
                    let pred = model.predict_nodes(&mut tape, &pc.graph.graph, &nodes);
                    let t = tape.constant(targets.clone());
                    let loss = tape.mse_loss(pred, t);
                    let grads = tape.backward(loss);
                    std::hint::black_box(grads.param_grads(&tape).len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward_backward);
criterion_main!(benches);
