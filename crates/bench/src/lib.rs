//! Experiment harness shared by the per-table/per-figure binaries.
//!
//! Every binary in `src/bin/` reproduces one artifact of the paper
//! (Table IV, Figure 5, Figure 6, Figure 7, Figure 8, Table V, plus the
//! layer-depth sweep the paper mentions and a component ablation). They
//! share the dataset build, normalisation, and result-output plumbing
//! defined here.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --scale <f64>    dataset size multiplier        (default 0.35)
//! --epochs <n>     GNN training epochs            (default 60)
//! --runs <n>       repetitions for averaged stats (default 1)
//! --seed <n>       master seed                    (default 2020)
//! --embed <n>      embedding width F              (default 32)
//! --layers <n>     message-passing depth L        (default 5)
//! --out <dir>      results directory              (default results)
//! --full           paper-scale preset (scale 1.0, epochs 120, runs 3)
//! --quick          smoke-test preset
//! ```

#![warn(missing_docs)]

pub mod plot;
pub mod testbench;

use std::path::{Path, PathBuf};

use paragraph::{fit_norm, normalize_circuits, FeatureNorm, FitConfig, GnnKind, PreparedCircuit};
use paragraph_circuitgen::{paper_dataset, DatasetConfig, Split};
use paragraph_layout::LayoutConfig;

/// Command-line configuration shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Dataset size multiplier (1.0 = the scaled-down "paper-like" size).
    pub scale: f64,
    /// Training epochs per model.
    pub epochs: usize,
    /// Number of repeated runs (different seeds) for averaged metrics.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Embedding width `F`.
    pub embed_dim: usize,
    /// Message-passing depth `L`.
    pub layers: usize,
    /// Output directory for JSON result files.
    pub out_dir: PathBuf,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.35,
            epochs: 60,
            runs: 1,
            seed: 2020,
            embed_dim: 32,
            layers: 5,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl HarnessConfig {
    /// Parses `std::env::args()`; unknown flags abort with a usage
    /// message.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let take = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i).cloned().unwrap_or_else(|| usage_and_exit())
            };
            match args[i].as_str() {
                "--scale" => cfg.scale = take(&mut i).parse().unwrap_or_else(|_| usage_and_exit()),
                "--epochs" => {
                    cfg.epochs = take(&mut i).parse().unwrap_or_else(|_| usage_and_exit())
                }
                "--runs" => cfg.runs = take(&mut i).parse().unwrap_or_else(|_| usage_and_exit()),
                "--seed" => cfg.seed = take(&mut i).parse().unwrap_or_else(|_| usage_and_exit()),
                "--embed" => {
                    cfg.embed_dim = take(&mut i).parse().unwrap_or_else(|_| usage_and_exit())
                }
                "--layers" => {
                    cfg.layers = take(&mut i).parse().unwrap_or_else(|_| usage_and_exit())
                }
                "--out" => cfg.out_dir = PathBuf::from(take(&mut i)),
                "--full" => {
                    cfg.scale = 1.0;
                    cfg.epochs = 120;
                    cfg.runs = 3;
                }
                "--quick" => {
                    cfg.scale = 0.15;
                    cfg.epochs = 15;
                    cfg.runs = 1;
                }
                _ => usage_and_exit(),
            }
            i += 1;
        }
        cfg
    }

    /// Fit settings for one model of `kind` on run `run`.
    pub fn fit(&self, kind: GnnKind, run: usize) -> FitConfig {
        FitConfig {
            embed_dim: self.embed_dim,
            layers: self.layers,
            epochs: self.epochs,
            seed: self.seed ^ (run as u64 + 1).wrapping_mul(0x5DEE_CE66D),
            ..FitConfig::new(kind)
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: <experiment> [--scale f] [--epochs n] [--runs n] [--seed n] \
         [--embed n] [--layers n] [--out dir] [--full] [--quick]"
    );
    std::process::exit(2)
}

/// The prepared dataset: normalised train/test circuits plus the fitted
/// feature statistics.
#[derive(Debug)]
pub struct Harness {
    /// The configuration the harness was built with.
    pub config: HarnessConfig,
    /// Training circuits (`t1`–`t18`).
    pub train: Vec<PreparedCircuit>,
    /// Testing circuits (`e1`–`e4`).
    pub test: Vec<PreparedCircuit>,
    /// Fitted feature normalisation.
    pub norm: FeatureNorm,
}

impl Harness {
    /// Generates the dataset, synthesises layouts, builds graphs, and
    /// normalises features.
    pub fn build(config: HarnessConfig) -> Self {
        let dataset = paper_dataset(DatasetConfig {
            scale: config.scale,
            seed: config.seed,
        });
        let layout = LayoutConfig::default();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for dc in dataset {
            let pc = PreparedCircuit::new(dc.name.clone(), dc.circuit, &layout);
            match dc.split {
                Split::Train => train.push(pc),
                Split::Test => test.push(pc),
            }
        }
        let norm = fit_norm(&train);
        normalize_circuits(&mut train, &norm);
        normalize_circuits(&mut test, &norm);
        Self {
            config,
            train,
            test,
            norm,
        }
    }

    /// Total devices across both splits.
    pub fn total_devices(&self) -> usize {
        self.train
            .iter()
            .chain(&self.test)
            .map(|pc| pc.circuit.num_devices())
            .sum()
    }
}

/// Writes a JSON value into `<out_dir>/<name>.json`, creating the
/// directory if needed.
pub fn write_json(out_dir: &Path, name: &str, value: &serde_json::Value) {
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let path = out_dir.join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialisable"),
    )
    .expect("write results file");
    println!("[results written to {}]", path.display());
}

/// Formats a farad value as engineering text (fF-centric).
pub fn fmt_ff(farads: f64) -> String {
    format!("{:.3} fF", farads * 1e15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_tiny_dataset() {
        let cfg = HarnessConfig {
            scale: 0.08,
            epochs: 1,
            ..HarnessConfig::default()
        };
        let h = Harness::build(cfg);
        assert_eq!(h.train.len(), 18);
        assert_eq!(h.test.len(), 4);
        assert!(h.total_devices() > 300);
    }

    #[test]
    fn fit_seed_varies_per_run() {
        let cfg = HarnessConfig::default();
        assert_ne!(cfg.fit(GnnKind::Gcn, 0).seed, cfg.fit(GnnKind::Gcn, 1).seed);
    }
}
