//! **Figure 6** — Prediction accuracy comparison for different learning
//! models.
//!
//! Trains all seven models (Linear, XGB, GCN, GraphSage, RGCN, GAT,
//! ParaGraph) on each of the thirteen targets (CAP + 12 device
//! parameters), averaged over `--runs` seeds, and prints:
//!
//! * (a) average prediction R² per target and model,
//! * (b) MAE relative to the XGBoost model.
//!
//! As in the paper, a single `max_v = 10 fF`-range capacitance model is
//! used here (the ensemble study is `fig5_capacitance_range`).

use paragraph::{
    evaluate_model, train_models, BaselineKind, BaselineModel, EvalPairs, GnnKind, Target,
    TrainSpec,
};
use paragraph_ml::r_squared;

/// R² for a target: log-space for CAP (the quantity spans decades — this
/// matches the R²(log) column of the Figure 5 study), scaled space
/// otherwise.
fn target_r2(target: Target, pairs: &EvalPairs) -> f64 {
    if target.on_nets() {
        let (p, t): (Vec<f64>, Vec<f64>) = pairs
            .physical
            .iter()
            .map(|&(p, t)| ((p.max(1e-21)).log10(), (t.max(1e-21)).log10()))
            .unzip();
        r_squared(&p, &t)
    } else {
        pairs.summary().r2
    }
}
use paragraph_bench::plot::bar_chart;
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

/// A column of Figure 6: one model's name.
fn model_names() -> Vec<String> {
    let mut names = vec!["Linear".to_owned(), "XGB".to_owned()];
    names.extend(GnnKind::all().iter().map(|k| k.name().to_owned()));
    names
}

#[allow(clippy::needless_range_loop)] // metric tables are index-aligned
fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);
    let targets = Target::all();
    let names = model_names();
    // "A single net parasitic capacitance model max_v = 10 fF is used in
    // this study to ensure the model comparison is not biased by the
    // ensemble modeling" (§V).
    let cap_max = Some(10e-15);

    // metric[model][target] accumulated over runs.
    let mut r2 = vec![vec![0.0_f64; targets.len()]; names.len()];
    let mut mae = vec![vec![0.0_f64; targets.len()]; names.len()];
    let mut mape = vec![vec![0.0_f64; targets.len()]; names.len()];

    for run in 0..harness.config.runs {
        for (ti, &target) in targets.iter().enumerate() {
            let max_v = if target.on_nets() { cap_max } else { None };
            eprint!("[run {run}] {target}:");
            // Baselines.
            for (mi, kind) in [BaselineKind::Linear, BaselineKind::Xgb].iter().enumerate() {
                let model = BaselineModel::train(&harness.train, target, max_v, *kind);
                let pairs = model.evaluate(&harness.test, max_v);
                let s = pairs.summary();
                let r2_v = target_r2(target, &pairs);
                r2[mi][ti] += r2_v;
                mae[mi][ti] += s.mae;
                mape[mi][ti] += s.mape;
                eprint!(" {}={:.3}", kind.name(), r2_v);
            }
            // GNNs: the five kinds are independent models, so they train
            // concurrently on the shared pool; results come back (and are
            // accumulated) in kind order.
            let specs: Vec<TrainSpec> = GnnKind::all()
                .iter()
                .map(|kind| TrainSpec {
                    target,
                    max_value: max_v,
                    fit: harness.config.fit(*kind, run),
                })
                .collect();
            let trained = train_models(&harness.train, &specs, &harness.norm);
            for (gi, (kind, (model, _))) in GnnKind::all().iter().zip(trained).enumerate() {
                let pairs = evaluate_model(&model, &harness.test, max_v);
                let s = pairs.summary();
                let r2_v = target_r2(target, &pairs);
                let mi = 2 + gi;
                r2[mi][ti] += r2_v;
                mae[mi][ti] += s.mae;
                mape[mi][ti] += s.mape;
                eprint!(" {}={:.3}", kind.name(), r2_v);
            }
            eprintln!();
        }
    }
    let n = harness.config.runs as f64;
    for row in r2.iter_mut().chain(mae.iter_mut()).chain(mape.iter_mut()) {
        for v in row.iter_mut() {
            *v /= n;
        }
    }

    // ---- (a) R² table -------------------------------------------------
    println!(
        "\nFigure 6a: average prediction R^2 (test circuits, {} run(s))",
        n
    );
    print!("{:>10}", "target");
    for name in &names {
        print!("{name:>11}");
    }
    println!();
    for (ti, target) in targets.iter().enumerate() {
        print!("{:>10}", target.name());
        for mi in 0..names.len() {
            print!("{:>11.3}", r2[mi][ti]);
        }
        println!();
    }
    print!("{:>10}", "AVERAGE");
    let mut avg_r2 = Vec::new();
    for mi in 0..names.len() {
        let avg = r2[mi].iter().sum::<f64>() / targets.len() as f64;
        avg_r2.push(avg);
        print!("{avg:>11.3}");
    }
    println!();

    println!(
        "\n{}",
        bar_chart(
            "Figure 6a (bars): average R^2 per model",
            &names
                .iter()
                .zip(&avg_r2)
                .map(|(n, &v)| (n.clone(), v))
                .collect::<Vec<_>>(),
            40,
        )
    );

    // ---- (b) MAE relative to XGB --------------------------------------
    println!("\nFigure 6b: MAE relative to the XGBoost model (lower is better)");
    print!("{:>10}", "target");
    for name in &names {
        print!("{name:>11}");
    }
    println!();
    for (ti, target) in targets.iter().enumerate() {
        print!("{:>10}", target.name());
        let xgb = mae[1][ti].max(1e-30);
        for mi in 0..names.len() {
            print!("{:>11.3}", mae[mi][ti] / xgb);
        }
        println!();
    }

    // ---- headline quotes ----------------------------------------------
    let pg = *avg_r2.last().expect("paragraph column");
    let xgb_avg = avg_r2[1];
    let sage_avg = avg_r2[3];
    println!("\nheadline (paper: ParaGraph avg R^2 = 0.772, 110% better than XGBoost;");
    println!("          second-best GraphSage = 0.703):");
    println!(
        "  ParaGraph avg R^2 = {pg:.3} ({:+.0}% vs XGBoost {xgb_avg:.3}); GraphSage = {sage_avg:.3}",
        (pg / xgb_avg.max(1e-9) - 1.0) * 100.0
    );
    let mae_ratio = |mi: usize| {
        let pg_sum: f64 = (0..targets.len())
            .map(|t| mae[mi][t] / mae[1][t].max(1e-30))
            .sum();
        pg_sum / targets.len() as f64
    };
    println!(
        "  mean MAE vs XGB: ParaGraph {:.2}x, GraphSage {:.2}x (paper: -44% / -33%)",
        mae_ratio(names.len() - 1),
        mae_ratio(3)
    );

    write_json(
        &harness.config.out_dir,
        "fig6_model_comparison",
        &json!({
            "models": names,
            "targets": targets.iter().map(|t| t.name()).collect::<Vec<_>>(),
            "r2": r2,
            "mae": mae,
            "mape": mape,
            "avg_r2": avg_r2,
            "runs": harness.config.runs,
            "epochs": harness.config.epochs,
            "scale": harness.config.scale,
        }),
    );
}
