//! **Figure 8** — t-SNE projection of net-node embeddings of the
//! `max_v = 10 fF` capacitance model on each testing circuit, coloured by
//! log10 of the ground-truth capacitance.
//!
//! The paper's qualitative claim is that points with different colours
//! separate well ("the model learned to differentiate nets with different
//! capacitances"). We quantify it: the mean |Δ log10(cap)| between each
//! point and its 5 nearest t-SNE neighbours must be far below the same
//! statistic under random pairing.

use paragraph::{GnnKind, Target, TargetModel};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use paragraph_ml::{knn_label_spread, tsne, TsneConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    // The paper uses the max_v = 10 fF model for this figure.
    let max_v = Some(10e-15);
    let (model, _) = TargetModel::train(
        &harness.train,
        Target::Cap,
        max_v,
        harness.config.fit(GnnKind::ParaGraph, 0),
        &harness.norm,
    );

    println!("Figure 8: t-SNE of net embeddings (capacitance model, max_v = 10 fF)");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>10}",
        "circuit", "nets", "knn spread", "random", "separated?"
    );
    let mut out = Vec::new();
    for pc in &harness.test {
        let labels = pc.labels(Target::Cap, None);
        let emb = model.embeddings(pc);
        // Net-node embedding rows + log10 cap labels, subsampled to keep
        // exact t-SNE tractable.
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut logs: Vec<f64> = Vec::new();
        let stride = (labels.nodes.len() / 400).max(1);
        for (i, (&node, phys)) in labels.nodes.iter().zip(&labels.physical).enumerate() {
            if i % stride != 0 {
                continue;
            }
            rows.push(emb.row(node as usize).to_vec());
            logs.push((phys / 1e-15).log10());
        }
        // Perplexity must stay well below the point count (tiny circuits
        // would otherwise degenerate into one blob).
        let perplexity = (rows.len() as f64 / 5.0).clamp(5.0, 30.0);
        let points = tsne(
            &rows,
            &TsneConfig {
                iterations: 300,
                perplexity,
                ..TsneConfig::default()
            },
        );
        let spread = knn_label_spread(&points, &logs, 5.min(points.len().saturating_sub(1)));
        // Random baseline: expected |Δlabel| over random pairs.
        let mut random = 0.0;
        let mut count = 0.0;
        for i in 0..logs.len() {
            for j in i + 1..logs.len() {
                random += (logs[i] - logs[j]).abs();
                count += 1.0;
            }
        }
        let random = if count > 0.0 { random / count } else { 0.0 };
        let separated = spread < random * 0.75;
        println!(
            "{:>8} {:>8} {:>14.3} {:>14.3} {:>10}",
            pc.name,
            points.len(),
            spread,
            random,
            if separated { "yes" } else { "NO" }
        );
        out.push(json!({
            "circuit": pc.name,
            "knn_spread": spread,
            "random_spread": random,
            "points": points
                .iter()
                .zip(&logs)
                .map(|((x, y), l)| json!([x, y, l]))
                .collect::<Vec<_>>(),
        }));
    }
    println!("\nexpected shape (paper): colours (log10 cap) are well separated in the");
    println!("embedding, i.e. knn spread << random spread on every test circuit.");

    write_json(
        &harness.config.out_dir,
        "fig8_tsne",
        &json!({
            "circuits": out,
            "epochs": harness.config.epochs,
            "scale": harness.config.scale,
        }),
    );
}
