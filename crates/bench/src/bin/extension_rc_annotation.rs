//! **Extension: RC (trace-resistance) annotation** — §II notes "the model
//! can be extended to represent via and trace resistances", deferred in
//! the paper because multi-path resistances blow up netlist size.
//!
//! Uses the predicted net *resistance* (the `RES` extension target)
//! together with predicted capacitance to annotate an RC π-model per net,
//! and measures how much closer the RC-annotated simulation sits to the
//! RC-annotated reference than lumped-C-only annotation does.

use paragraph::{GnnKind, PreparedCircuit, Target, TargetModel};
use paragraph_bench::testbench::table5_suite;
use paragraph_bench::{write_json, Harness, HarnessConfig};
use paragraph_layout::{extract, LayoutConfig};
use paragraph_ml::geometric_mean;
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);
    let layout = LayoutConfig::default();

    eprintln!("training CAP + RES models...");
    let (cap_model, _) = TargetModel::train(
        &harness.train,
        Target::Cap,
        None,
        harness.config.fit(GnnKind::ParaGraph, 0),
        &harness.norm,
    );
    let (res_model, _) = TargetModel::train(
        &harness.train,
        Target::Res,
        None,
        harness.config.fit(GnnKind::ParaGraph, 1),
        &harness.norm,
    );

    // For each testbench: the reference is the truth-RC simulation; we
    // compare predicted-lumped-C vs predicted-RC annotations against it.
    let suite = table5_suite();
    let mut errs_lumped = Vec::new();
    let mut errs_rc = Vec::new();
    for tb in suite.iter() {
        let truth = extract(&tb.circuit, &layout);
        let mut pc = PreparedCircuit::new(tb.name.clone(), tb.circuit.clone(), &layout);
        pc.graph.normalize(&harness.norm);
        let cap_pred = cap_model.predict_graph(&tb.circuit, &pc.graph);
        let res_pred = res_model.predict_graph(&tb.circuit, &pc.graph);

        let Ok(reference) = tb.run_rc(&truth.net_cap, &truth.net_res) else {
            continue;
        };
        let Ok(lumped) = tb.run(&cap_pred) else {
            continue;
        };
        let Ok(rc) = tb.run_rc(&cap_pred, &res_pred) else {
            continue;
        };
        for mi in 0..tb.metrics.len() {
            let Some(r) = reference[mi] else { continue };
            if r.abs() < 1e-15 {
                continue;
            }
            if let (Some(l), Some(x)) = (lumped[mi], rc[mi]) {
                errs_lumped.push(((l - r) / r).abs().max(0.002));
                errs_rc.push(((x - r) / r).abs().max(0.002));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!("RC-annotated reference, {} metrics:", errs_lumped.len());
    println!(
        "  predicted lumped-C annotation: mean {:.2}%  geomean {:.2}%",
        mean(&errs_lumped),
        geometric_mean(&errs_lumped) * 100.0
    );
    println!(
        "  predicted RC (C + R) annotation: mean {:.2}%  geomean {:.2}%",
        mean(&errs_rc),
        geometric_mean(&errs_rc) * 100.0
    );
    println!("\nexpected shape: adding the predicted trace resistance moves the");
    println!("pre-layout simulation closer to the RC reference.");

    write_json(
        &harness.config.out_dir,
        "extension_rc_annotation",
        &json!({
            "metrics": errs_lumped.len(),
            "lumped_mean_pct": mean(&errs_lumped),
            "rc_mean_pct": mean(&errs_rc),
            "lumped_geomean_pct": geometric_mean(&errs_lumped) * 100.0,
            "rc_geomean_pct": geometric_mean(&errs_rc) * 100.0,
            "epochs": harness.config.epochs,
        }),
    );
}
