//! **Component ablation** (ours) — justifies the three ingredients
//! Algorithm 1 borrows: GAT-style attention, RGCN-style per-edge-type
//! weights, and GraphSage-style concat skip.
//!
//! Trains the full ParaGraph model and three ablated variants on the CAP
//! and SA targets. DESIGN.md calls these design choices out; the expected
//! shape is that each ablation costs accuracy relative to full ParaGraph.

use paragraph::{evaluate_model, FitConfig, GnnKind, Target, TargetModel};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn variants(base: FitConfig) -> Vec<(&'static str, FitConfig)> {
    let mut no_att = base.clone();
    no_att.ablate_attention = true;
    let mut no_types = base.clone();
    no_types.ablate_edge_types = true;
    let mut no_concat = base.clone();
    no_concat.ablate_concat = true;
    vec![
        ("full ParaGraph", base),
        ("- attention (mean agg)", no_att),
        ("- edge types (one weight)", no_types),
        ("- concat skip (sum)", no_concat),
    ]
}

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    let mut out = Vec::new();
    for target in [Target::Cap, Target::Sa] {
        let max_v = None;
        println!("\ncomponent ablation on {target}:");
        println!("{:>28} {:>10} {:>10}", "variant", "R2(log)", "MAPE");
        for (name, fit_base) in variants(harness.config.fit(GnnKind::ParaGraph, 0)) {
            let mut r2_sum = 0.0;
            let mut mape_sum = 0.0;
            for run in 0..harness.config.runs {
                let mut fit = fit_base.clone();
                fit.seed ^= (run as u64) << 17;
                let (model, _) =
                    TargetModel::train(&harness.train, target, max_v, fit, &harness.norm);
                let s = evaluate_model(&model, &harness.test, max_v).summary();
                r2_sum += s.r2;
                mape_sum += s.mape;
            }
            let n = harness.config.runs as f64;
            println!("{:>28} {:>10.3} {:>9.1}%", name, r2_sum / n, mape_sum / n);
            out.push(json!({
                "target": target.name(),
                "variant": name,
                "r2_log": r2_sum / n,
                "mape_pct": mape_sum / n,
            }));
        }
    }
    println!("\nexpected shape: every ablation reduces R^2 vs full ParaGraph.");

    write_json(
        &harness.config.out_dir,
        "ablation_components",
        &json!({
            "rows": out,
            "epochs": harness.config.epochs,
            "runs": harness.config.runs,
            "scale": harness.config.scale,
        }),
    );
}
