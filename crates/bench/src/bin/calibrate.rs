//! Internal calibration tool: prints dataset statistics (graph sizes, cap
//! label distribution) and times one training epoch. Not a paper artifact;
//! used to pick harness defaults.

use paragraph::{GnnKind, Target, TargetModel};
use paragraph_bench::{Harness, HarnessConfig};

fn main() {
    let mut config = HarnessConfig::from_args();
    config.runs = 1;
    let t0 = std::time::Instant::now();
    let harness = Harness::build(config.clone());
    println!("dataset build: {:.2}s", t0.elapsed().as_secs_f64());

    let mut caps: Vec<f64> = Vec::new();
    for pc in harness.train.iter().chain(&harness.test) {
        let labels = pc.labels(Target::Cap, None);
        caps.extend(&labels.physical);
        println!(
            "{:>4}: {:>6} devices {:>6} nets {:>7} nodes {:>8} edges {:>6} cap labels",
            pc.name,
            pc.circuit.num_devices(),
            pc.circuit.kind_counts().net,
            pc.graph.graph.num_nodes(),
            pc.graph.graph.num_edges(),
            labels.len(),
        );
    }
    caps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| caps[((caps.len() - 1) as f64 * p) as usize] * 1e15;
    println!(
        "cap labels: n={} min={:.4}fF p10={:.4}fF p50={:.3}fF p90={:.2}fF p99={:.2}fF max={:.2}fF",
        caps.len(),
        q(0.0),
        q(0.10),
        q(0.50),
        q(0.90),
        q(0.99),
        q(1.0),
    );
    let decades = (q(1.0) / q(0.0)).log10();
    println!("span: {decades:.2} decades");

    // Quick quality probe: ParaGraph vs XGB on CAP and SA.
    use paragraph::{evaluate_model, BaselineKind, BaselineModel};
    for target in [Target::Cap, Target::Sa] {
        let t1 = std::time::Instant::now();
        let fit = harness.config.fit(GnnKind::ParaGraph, 0);
        let epochs = fit.epochs;
        let (model, loss) = TargetModel::train(&harness.train, target, None, fit, &harness.norm);
        let s = evaluate_model(&model, &harness.test, None).summary();
        println!(
            "{target}: ParaGraph r2={:.3} mape={:.1}% (loss {loss:.4}, {} epochs, {:.1}s)",
            s.r2,
            s.mape,
            epochs,
            t1.elapsed().as_secs_f64()
        );
        let xgb = BaselineModel::train(&harness.train, target, None, BaselineKind::Xgb);
        let sx = xgb.evaluate(&harness.test, None).summary();
        println!("{target}: XGB       r2={:.3} mape={:.1}%", sx.r2, sx.mape);
    }
}
