//! **Figure 5 + §IV ensemble study** — capacitance prediction across the
//! full range with single models of different `max_v`, and the ensemble
//! (Algorithm 2) built from them.
//!
//! Reproduces:
//! * Fig. 5a–d: predicted-vs-truth scatter for models trained with
//!   `max_v` = 10 pF, 100 fF, 10 fF, 1 fF (exported as JSON point series),
//! * the §IV quantitative claim: the ensemble's MAE/MAPE beat every
//!   individual model (paper: MAE 0.852 fF, MAPE 15.0 %).
//!
//! For each single model, the in-range and below-range accuracy is also
//! printed, showing the paper's observation that a wide-range model
//! degrades on small capacitances.

use paragraph::{train_models, CapEnsemble, GnnKind, Target, TargetModel, TrainSpec, PAPER_MAX_V};
use paragraph_bench::plot::log_scatter;
use paragraph_bench::{fmt_ff, write_json, Harness, HarnessConfig};
use paragraph_ml::{mae, mape, r_squared};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    // Train one CAP model per max_v (ascending) — all four ensemble
    // members concurrently on the shared worker pool, returned in
    // `max_v` order.
    let specs: Vec<TrainSpec> = PAPER_MAX_V
        .iter()
        .enumerate()
        .map(|(i, &max_v)| {
            let mut fit = harness.config.fit(GnnKind::ParaGraph, 0);
            fit.seed ^= (i as u64 + 1) << 32;
            eprintln!("queueing CAP model max_v = {}", fmt_ff(max_v));
            TrainSpec {
                target: Target::Cap,
                max_value: Some(max_v),
                fit,
            }
        })
        .collect();
    let models: Vec<TargetModel> = train_models(&harness.train, &specs, &harness.norm)
        .into_iter()
        .map(|(model, _)| model)
        .collect();

    // Collect per-net truth + per-model predictions over all test nets.
    let mut truth_f: Vec<f64> = Vec::new();
    let mut preds: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    for pc in &harness.test {
        let labels = pc.labels(Target::Cap, None);
        let per_model: Vec<Vec<(u32, f64)>> = models
            .iter()
            .map(|m| m.predict_nodes(pc, labels.nodes.clone()))
            .collect();
        for (row, phys) in labels.physical.iter().enumerate() {
            truth_f.push(*phys);
            for (mi, pm) in per_model.iter().enumerate() {
                preds[mi].push(pm[row].1);
            }
        }
    }

    println!("Figure 5: single-model capacitance prediction by training range");
    println!("(sweet spot = labels within two decades of max_v, where the paper");
    println!(" says each range model is accurate)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "max_v", "MAE", "MAPE", "R2(log)", "MAPE<=max_v", "MAPE>max_v", "sweet spot"
    );
    let log =
        |v: &[f64]| -> Vec<f64> { v.iter().map(|x| (x.max(1e-21) / 1e-15).log10()).collect() };
    let mut rows = Vec::new();
    for (mi, model) in models.iter().enumerate() {
        let max_v = model.max_value.expect("max set");
        let (mut pin, mut tin, mut pout, mut tout) = (vec![], vec![], vec![], vec![]);
        let (mut psweet, mut tsweet) = (vec![], vec![]);
        for (p, t) in preds[mi].iter().zip(&truth_f) {
            if *t <= max_v {
                pin.push(*p);
                tin.push(*t);
                if *t >= max_v / 100.0 {
                    psweet.push(*p);
                    tsweet.push(*t);
                }
            } else {
                pout.push(*p);
                tout.push(*t);
            }
        }
        let m_all = mae(&preds[mi], &truth_f);
        let mp_all = mape(&preds[mi], &truth_f);
        let r2_log = r_squared(&log(&preds[mi]), &log(&truth_f));
        let mp_in = mape(&pin, &tin);
        let mp_out = mape(&pout, &tout);
        let mp_sweet = mape(&psweet, &tsweet);
        println!(
            "{:>10} {:>12} {:>11.1}% {:>12.3} {:>13.1}% {:>13.1}% {:>11.1}%",
            fmt_ff(max_v),
            fmt_ff(m_all),
            mp_all,
            r2_log,
            mp_in,
            mp_out,
            mp_sweet
        );
        rows.push(json!({
            "max_v_f": max_v,
            "mae_f": m_all,
            "mape_pct": mp_all,
            "r2_log": r2_log,
            "mape_in_range_pct": mp_in,
            "mape_above_range_pct": mp_out,
            "mape_sweet_spot_pct": mp_sweet,
            "scatter": preds[mi]
                .iter()
                .zip(&truth_f)
                .map(|(p, t)| json!([t, p]))
                .collect::<Vec<_>>(),
        }));
    }

    // Scatter panels (the paper's Fig. 5a-d, log-log).
    for (mi, model) in models.iter().enumerate() {
        let pts: Vec<(f64, f64)> = truth_f
            .iter()
            .zip(&preds[mi])
            .map(|(&t, &p)| (t, p))
            .collect();
        println!(
            "
{}",
            log_scatter(
                &format!(
                    "Fig 5 panel: max_v = {}",
                    fmt_ff(model.max_value.expect("max"))
                ),
                &pts,
                64,
                14
            )
        );
    }

    // Ensemble (Algorithm 2).
    let ensemble = CapEnsemble::new(models);
    let mut ens_pred = Vec::with_capacity(truth_f.len());
    for i in 0..truth_f.len() {
        let per: Vec<f64> = (0..preds.len()).map(|mi| preds[mi][i]).collect();
        ens_pred.push(ensemble.select(&per));
    }
    let ens_mae = mae(&ens_pred, &truth_f);
    let ens_mape = mape(&ens_pred, &truth_f);
    let ens_r2 = r_squared(&log(&ens_pred), &log(&truth_f));
    println!(
        "{:>10} {:>12} {:>11.1}% {:>12.3}",
        "ensemble",
        fmt_ff(ens_mae),
        ens_mape,
        ens_r2
    );
    {
        let pts: Vec<(f64, f64)> = truth_f
            .iter()
            .zip(&ens_pred)
            .map(|(&t, &p)| (t, p))
            .collect();
        println!(
            "\n{}",
            log_scatter("Fig 5 ensemble (Algorithm 2)", &pts, 64, 14)
        );
    }
    println!("\nheadline (paper: ensemble gives the smallest MAE (0.852 fF) and MAPE (15.0%)");
    println!("          of all individual models):");
    let best_single_mae = rows
        .iter()
        .map(|r| r["mae_f"].as_f64().expect("f64"))
        .fold(f64::INFINITY, f64::min);
    println!(
        "  ensemble MAE {} vs best single {} -> {}",
        fmt_ff(ens_mae),
        fmt_ff(best_single_mae),
        if ens_mae <= best_single_mae {
            "ensemble wins (shape holds)"
        } else {
            "single wins"
        }
    );

    write_json(
        &harness.config.out_dir,
        "fig5_capacitance_range",
        &json!({
            "models": rows,
            "ensemble": {
                "mae_f": ens_mae,
                "mape_pct": ens_mape,
                "r2_log": ens_r2,
                "scatter": ens_pred
                    .iter()
                    .zip(&truth_f)
                    .map(|(p, t)| json!([t, p]))
                    .collect::<Vec<_>>(),
            },
            "epochs": harness.config.epochs,
            "scale": harness.config.scale,
        }),
    );
}
