//! **Extension: net parasitic resistance** — the paper's conclusion names
//! resistance prediction as future work ("Future work will focus on
//! extending this model to predict net parasitic resistances as well").
//!
//! Trains the full model lineup on the `RES` target (lumped driver-to-load
//! wire resistance extracted by the layout synthesiser) and reports the
//! same R²/MAE/MAPE columns as Figure 6. Expected shape: like CAP, the
//! graph models dominate the node-feature-only baselines, because wire
//! resistance is a function of routed length, which only the connectivity
//! reveals.

use paragraph::{evaluate_model, BaselineKind, BaselineModel, GnnKind, Target, TargetModel};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);
    let target = Target::Res;

    println!("Extension: net parasitic resistance prediction (RES, ohms)");
    println!(
        "{:>12} {:>10} {:>12} {:>10}",
        "model", "R2(log)", "MAE (ohm)", "MAPE"
    );
    let mut rows = Vec::new();
    for kind in [BaselineKind::Linear, BaselineKind::Xgb] {
        let model = BaselineModel::train(&harness.train, target, None, kind);
        let s = model.evaluate(&harness.test, None).summary();
        println!(
            "{:>12} {:>10.3} {:>12.1} {:>9.1}%",
            kind.name(),
            s.r2,
            s.mae,
            s.mape
        );
        rows.push(
            json!({"model": kind.name(), "r2_log": s.r2, "mae_ohm": s.mae, "mape_pct": s.mape}),
        );
    }
    for kind in GnnKind::all() {
        let fit = harness.config.fit(kind, 0);
        let (model, _) = TargetModel::train(&harness.train, target, None, fit, &harness.norm);
        let s = evaluate_model(&model, &harness.test, None).summary();
        println!(
            "{:>12} {:>10.3} {:>12.1} {:>9.1}%",
            kind.name(),
            s.r2,
            s.mae,
            s.mape
        );
        rows.push(
            json!({"model": kind.name(), "r2_log": s.r2, "mae_ohm": s.mae, "mape_pct": s.mape}),
        );
    }
    println!("\nexpected shape: the GNNs (ParaGraph in particular) beat the");
    println!("node-feature baselines, as with CAP in Figure 6.");

    write_json(
        &harness.config.out_dir,
        "extension_resistance",
        &json!({"rows": rows, "epochs": harness.config.epochs, "scale": harness.config.scale}),
    );
}
