//! **Extension: multi-head attention** — §V notes the paper was limited to
//! one attention head by GPU memory and expects more attention heads
//! would lead to even better results".
//!
//! Sweeps 1 / 2 / 4 heads for the ParaGraph capacitance and SA models.

use paragraph::{evaluate_model, GnnKind, Target, TargetModel};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    let mut rows = Vec::new();
    for target in [Target::Cap, Target::Sa] {
        let max_v = if target.on_nets() { Some(10e-12) } else { None };
        println!("\nattention-head sweep on {target}:");
        println!("{:>7} {:>10} {:>10}", "heads", "R2(log)", "MAPE");
        for heads in [1_usize, 2, 4] {
            let mut r2 = 0.0;
            let mut mape = 0.0;
            for run in 0..harness.config.runs {
                let mut fit = harness.config.fit(GnnKind::ParaGraph, run);
                fit.attention_heads = heads;
                let (model, _) =
                    TargetModel::train(&harness.train, target, max_v, fit, &harness.norm);
                let s = evaluate_model(&model, &harness.test, max_v).summary();
                r2 += s.r2;
                mape += s.mape;
            }
            let n = harness.config.runs as f64;
            println!("{heads:>7} {:>10.3} {:>9.1}%", r2 / n, mape / n);
            rows.push(json!({
                "target": target.name(),
                "heads": heads,
                "r2_log": r2 / n,
                "mape_pct": mape / n,
            }));
        }
    }

    write_json(
        &harness.config.out_dir,
        "extension_attention_heads",
        &json!({"rows": rows, "epochs": harness.config.epochs, "runs": harness.config.runs}),
    );
}
