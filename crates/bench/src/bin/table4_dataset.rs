//! **Table IV** — Device and net distribution of the circuit dataset.
//!
//! Prints the per-circuit counts (`#net`, `#tran`, `#tran_th`, `res`,
//! `cap`, `bjt`, `dio`) for the 18 training and 4 testing chips, exactly
//! the columns of the paper's Table IV. Absolute counts are scaled down
//! (see DESIGN.md §2); the qualitative mix per row follows the paper.

use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    println!("Table IV: Device and Net Distribution of the Circuit Dataset");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>5} {:>5}",
        "circuit", "#net", "#tran", "#tran_th", "res", "cap", "bjt", "dio"
    );
    let mut rows = Vec::new();
    for pc in harness.train.iter().chain(&harness.test) {
        let k = pc.circuit.kind_counts();
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>5} {:>5}",
            pc.name, k.net, k.tran, k.tran_th, k.res, k.cap, k.bjt, k.dio
        );
        rows.push(json!({
            "circuit": pc.name,
            "net": k.net,
            "tran": k.tran,
            "tran_th": k.tran_th,
            "res": k.res,
            "cap": k.cap,
            "bjt": k.bjt,
            "dio": k.dio,
        }));
    }
    let train_dev: usize = harness.train.iter().map(|p| p.circuit.num_devices()).sum();
    let test_dev: usize = harness.test.iter().map(|p| p.circuit.num_devices()).sum();
    println!("\ntrain devices: {train_dev}   test devices: {test_dev}");
    println!("(t1-t18 train; e1-e4 test — split by construction, as the paper's");
    println!(" designer-recommended split keeps test circuits distinct.)");

    write_json(
        &harness.config.out_dir,
        "table4_dataset",
        &json!({
            "scale": harness.config.scale,
            "rows": rows,
            "train_devices": train_dev,
            "test_devices": test_dev,
        }),
    );
}
