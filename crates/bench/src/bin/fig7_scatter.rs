//! **Figure 7** — ParaGraph predictions vs ground truth on the testing
//! circuits for net capacitance, LDE1, LDE5, and source area (SA).
//!
//! Exports the scatter series and prints the per-target MAPE. The paper
//! reports MAPE ≈ 15.0 % (CAP, with the §IV ensemble) and 10.3 % (SA),
//! while both LDE parameters exceed 100 % — "the result of inherent layout
//! uncertainty". The same ordering (CAP/SA accurate, LDE far worse) must
//! hold here, since our layout synthesiser injects the largest noise into
//! LDE.

use paragraph::{
    evaluate_model, train_models, CapEnsemble, EvalPairs, GnnKind, Target, TargetModel, TrainSpec,
    PAPER_MAX_V,
};
use paragraph_bench::plot::log_scatter;
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

/// `EvalPairs.physical` stores `(prediction, truth)`; the plots take
/// `(truth, prediction)`.
fn swap(pairs: &[(f64, f64)]) -> Vec<(f64, f64)> {
    pairs.iter().map(|&(p, t)| (t, p)).collect()
}

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    let mut out = Vec::new();
    println!("Figure 7: ParaGraph prediction vs ground truth (test circuits)");
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "target", "R2(log)", "MAPE", "points"
    );

    // CAP panel: the ensemble of Algorithm 2 (matches the paper's quoted
    // 15.0 % MAPE, which is the ensemble figure).
    {
        // All four range members train concurrently on the shared pool.
        let specs: Vec<TrainSpec> = PAPER_MAX_V
            .iter()
            .enumerate()
            .map(|(i, &max_v)| {
                let mut fit = harness.config.fit(GnnKind::ParaGraph, 0);
                fit.seed ^= (i as u64 + 1) << 24;
                TrainSpec {
                    target: Target::Cap,
                    max_value: Some(max_v),
                    fit,
                }
            })
            .collect();
        let members = train_models(&harness.train, &specs, &harness.norm)
            .into_iter()
            .map(|(m, _)| m)
            .collect();
        let ensemble = CapEnsemble::new(members);
        let mut pairs = EvalPairs::default();
        for pc in &harness.test {
            let preds = ensemble.predict(pc);
            let labels = pc.labels(Target::Cap, None);
            for (&node, phys) in labels.nodes.iter().zip(&labels.physical) {
                let net = pc.graph.net_of_node[node as usize].expect("net node");
                let Some(p) = preds[net.0 as usize] else {
                    continue;
                };
                pairs.physical.push((p, *phys));
                pairs
                    .scaled
                    .push((Target::Cap.scale(p) as f64, Target::Cap.scale(*phys) as f64));
            }
        }
        let s = pairs.summary();
        println!(
            "{:>8} {:>10.3} {:>9.1}% {:>8}",
            "CAP", s.r2, s.mape, s.count
        );
        println!(
            "{}",
            log_scatter(
                "CAP: prediction vs truth (log-log)",
                &swap(&pairs.physical),
                64,
                16
            )
        );
        out.push(json!({
            "target": "CAP",
            "r2_log": s.r2,
            "mape_pct": s.mape,
            "mae": s.mae,
            "scatter": pairs.physical.iter().map(|(p, t)| json!([t, p])).collect::<Vec<_>>(),
        }));
    }

    for target in [Target::Lde(1), Target::Lde(5), Target::Sa] {
        let (model, _) = TargetModel::train(
            &harness.train,
            target,
            None,
            harness.config.fit(GnnKind::ParaGraph, 0),
            &harness.norm,
        );
        let pairs = evaluate_model(&model, &harness.test, None);
        let s = pairs.summary();
        println!(
            "{:>8} {:>10.3} {:>9.1}% {:>8}",
            target.name(),
            s.r2,
            s.mape,
            s.count
        );
        println!(
            "{}",
            log_scatter(
                &format!("{}: prediction vs truth (log-log)", target.name()),
                &swap(&pairs.physical),
                64,
                16
            )
        );
        out.push(json!({
            "target": target.name(),
            "r2_log": s.r2,
            "mape_pct": s.mape,
            "mae": s.mae,
            "scatter": pairs
                .physical
                .iter()
                .map(|(p, t)| json!([t, p]))
                .collect::<Vec<_>>(),
        }));
    }
    println!("\nexpected shape (paper): CAP 15.0% and SA 10.3% MAPE; both LDEs > 100%");
    println!("due to layout uncertainty — the LDE rows above must be far worse than");
    println!("CAP/SA.");

    write_json(
        &harness.config.out_dir,
        "fig7_scatter",
        &json!({
            "panels": out,
            "epochs": harness.config.epochs,
            "scale": harness.config.scale,
        }),
    );
}
