//! **Extension: attention interpretability** — §III remarks that
//! "analyzing the learned attentional weights may also help model
//! interpretability".
//!
//! Trains a ParaGraph capacitance model, extracts the first layer's
//! per-edge attention weights on the test circuits, and reports, per edge
//! type, how far the attention distribution deviates from uniform
//! (focus = 1 - normalised entropy; 0 = uniform, 1 = single-neighbour).
//! A trained model should focus: e.g. a net's capacitance is dominated by
//! its widest drivers, so `transistor_drain -> net` edges should show
//! non-uniform attention.

use paragraph::{edge_type_name, GnnKind, Target, TargetModel, NUM_EDGE_TYPES};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);
    let (model, _) = TargetModel::train(
        &harness.train,
        Target::Cap,
        None,
        harness.config.fit(GnnKind::ParaGraph, 0),
        &harness.norm,
    );

    // focus per edge type, averaged over destinations with >= 2 in-edges.
    let mut focus_sum = vec![0.0_f64; NUM_EDGE_TYPES];
    let mut focus_cnt = vec![0_usize; NUM_EDGE_TYPES];
    for pc in &harness.test {
        let att = model.gnn().attention_weights(&pc.graph.graph);
        for (t, weights) in att.iter().enumerate() {
            if weights.is_empty() {
                continue;
            }
            // Group by destination.
            let dst = &pc.graph.graph.edges(t).dst;
            let mut groups: std::collections::HashMap<u32, Vec<f64>> = Default::default();
            for (e, &d) in dst.iter().enumerate() {
                groups.entry(d).or_default().push(weights[e] as f64);
            }
            for ws in groups.values() {
                let k = ws.len();
                if k < 2 {
                    continue;
                }
                let entropy: f64 = -ws
                    .iter()
                    .map(|&w| if w > 1e-12 { w * w.ln() } else { 0.0 })
                    .sum::<f64>();
                let uniform = (k as f64).ln();
                focus_sum[t] += 1.0 - entropy / uniform;
                focus_cnt[t] += 1;
            }
        }
    }

    println!("attention focus per edge type (0 = uniform, 1 = single neighbour):");
    println!("{:>36} {:>8} {:>8}", "edge type", "focus", "groups");
    let mut rows = Vec::new();
    for t in 0..NUM_EDGE_TYPES {
        if focus_cnt[t] == 0 {
            continue;
        }
        let focus = focus_sum[t] / focus_cnt[t] as f64;
        println!(
            "{:>36} {:>8.3} {:>8}",
            edge_type_name(t),
            focus,
            focus_cnt[t]
        );
        rows.push(json!({
            "edge_type": edge_type_name(t),
            "focus": focus,
            "groups": focus_cnt[t],
        }));
    }
    let overall: f64 =
        focus_sum.iter().sum::<f64>() / focus_cnt.iter().sum::<usize>().max(1) as f64;
    println!("\noverall focus {overall:.3} (a trained model deviates from uniform attention)");

    write_json(
        &harness.config.out_dir,
        "extension_attention_analysis",
        &json!({"rows": rows, "overall_focus": overall, "epochs": harness.config.epochs}),
    );
}
