//! **Extension: prediction confidence** — a heteroscedastic
//! (mean + variance) head trained with Gaussian NLL, giving each net a
//! per-prediction sigma. Useful exactly where the paper's §V discussion
//! lands: large-capacitance predictions are less trustworthy, and a
//! designer should know which ones.
//!
//! Reports calibration: test nets bucketed by predicted sigma quartile
//! must show monotonically increasing actual |log error|, and the ±2σ
//! interval should cover most nets.

use paragraph::{GnnKind, Target, TargetModel};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);

    let mut fit = harness.config.fit(GnnKind::ParaGraph, 0);
    fit.uncertainty = true;
    eprintln!("training NLL capacitance model...");
    let (model, _) = TargetModel::train(&harness.train, Target::Cap, None, fit, &harness.norm);

    // Collect (sigma, |log10 error|, covered) triples over the test set.
    let mut rows: Vec<(f64, f64, bool)> = Vec::new();
    for pc in &harness.test {
        let labels = pc.labels(Target::Cap, None);
        let preds = model.predict_nodes_uncertain(pc, labels.nodes.clone());
        for ((_, mean, sigma), truth) in preds.iter().zip(&labels.physical) {
            let log_err = ((mean / truth).log10()).abs();
            // Sigma is in log10 space for log-trained targets.
            let covered = log_err <= 2.0 * sigma;
            rows.push((*sigma, log_err, covered));
        }
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    println!(
        "calibration by predicted-sigma quartile ({} test nets):",
        rows.len()
    );
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "quartile", "mean sigma", "mean |log err|", "2σ coverage"
    );
    let mut quartiles = Vec::new();
    for q in 0..4 {
        let lo = rows.len() * q / 4;
        let hi = rows.len() * (q + 1) / 4;
        let chunk = &rows[lo..hi];
        let ms = chunk.iter().map(|r| r.0).sum::<f64>() / chunk.len().max(1) as f64;
        let me = chunk.iter().map(|r| r.1).sum::<f64>() / chunk.len().max(1) as f64;
        let cov = chunk.iter().filter(|r| r.2).count() as f64 / chunk.len().max(1) as f64 * 100.0;
        println!("{:>10} {:>14.3} {:>16.3} {:>11.1}%", q + 1, ms, me, cov);
        quartiles.push(json!({"quartile": q + 1, "mean_sigma": ms, "mean_abs_log_err": me, "coverage_2s_pct": cov}));
    }
    let overall_cov = rows.iter().filter(|r| r.2).count() as f64 / rows.len().max(1) as f64 * 100.0;
    println!("\noverall 2σ coverage: {overall_cov:.1}% (well-calibrated ≈ 95%)");
    println!("expected shape: |log error| grows with predicted sigma — the model");
    println!("knows which nets it cannot predict.");

    write_json(
        &harness.config.out_dir,
        "extension_uncertainty",
        &json!({
            "quartiles": quartiles,
            "coverage_2sigma_pct": overall_cov,
            "epochs": harness.config.epochs,
        }),
    );
}
