//! **§V layer-depth sweep** — "We swept the number of layers and found a
//! higher number of layers gives better results and plateaus at 5."
//!
//! Trains ParaGraph CAP models with L = 1..=6 and reports test R². The
//! shape to reproduce: R² improves with depth and flattens around L ≈ 5.

use paragraph::{evaluate_model, GnnKind, Target, TargetModel};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);
    // Log-scale full-range CAP model (the library default): the layer
    // sweep needs a well-conditioned target to show the depth trend.
    let max_v = None;

    println!("Layer sweep: ParaGraph CAP model, L = 1..6 (paper: plateaus at 5)");
    println!(
        "{:>4} {:>10} {:>10} {:>10}",
        "L", "R2(log)", "MAPE", "train s"
    );
    let mut rows = Vec::new();
    for layers in 1..=6 {
        let mut r2_sum = 0.0;
        let mut mape_sum = 0.0;
        let t0 = std::time::Instant::now();
        for run in 0..harness.config.runs {
            let mut fit = harness.config.fit(GnnKind::ParaGraph, run);
            fit.layers = layers;
            let (model, _) =
                TargetModel::train(&harness.train, Target::Cap, max_v, fit, &harness.norm);
            let s = evaluate_model(&model, &harness.test, max_v).summary();
            r2_sum += s.r2;
            mape_sum += s.mape;
        }
        let n = harness.config.runs as f64;
        let (r2, mape) = (r2_sum / n, mape_sum / n);
        println!(
            "{layers:>4} {:>10.3} {:>9.1}% {:>10.1}",
            r2,
            mape,
            t0.elapsed().as_secs_f64()
        );
        rows.push(json!({"layers": layers, "r2_log": r2, "mape_pct": mape}));
    }

    write_json(
        &harness.config.out_dir,
        "ablation_layers",
        &json!({
            "rows": rows,
            "epochs": harness.config.epochs,
            "runs": harness.config.runs,
            "scale": harness.config.scale,
        }),
    );
}
