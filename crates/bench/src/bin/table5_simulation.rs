//! **Table V** — Simulation errors between pre-layout predictions and
//! post-layout on 67 circuit metrics.
//!
//! For every testbench, the same netlist is simulated five times with
//! different parasitic-capacitance annotations:
//!
//! 1. extracted ground truth (the post-layout reference),
//! 2. no parasitics ("Layout w/o parasitics"),
//! 3. the designer's fanout rule of thumb ("Designer's Estimation"),
//! 4. XGBoost predictions,
//! 5. ParaGraph predictions (the 4-model ensemble of Algorithm 2).
//!
//! Per-metric relative errors vs the reference are bucketed exactly like
//! Table V, with mean and geometric-mean rows.

use paragraph::{
    train_models, BaselineKind, BaselineModel, CapEnsemble, GnnKind, PreparedCircuit, Target,
    TrainSpec, PAPER_MAX_V,
};
use paragraph_bench::testbench::{metric_count, table5_suite};
use paragraph_bench::{write_json, Harness, HarnessConfig};
use paragraph_layout::{designer_estimate, extract, LayoutConfig};
use paragraph_ml::{geometric_mean, ErrorHistogram};
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_args();
    let harness = Harness::build(config);
    let layout = LayoutConfig::default();

    // --- train the predictors on t1-t18 -------------------------------
    eprintln!("training XGB capacitance baseline...");
    // The baseline gets its best configuration: log-space training
    // (max_value = None) avoids the linear-scale small-cap collapse.
    let xgb = BaselineModel::train(&harness.train, Target::Cap, None, BaselineKind::Xgb);
    eprintln!("training ParaGraph capacitance ensemble (4 models, concurrent)...");
    let specs: Vec<TrainSpec> = PAPER_MAX_V
        .iter()
        .enumerate()
        .map(|(i, &max_v)| {
            let mut fit = harness.config.fit(GnnKind::ParaGraph, 0);
            fit.seed ^= (i as u64 + 1) << 40;
            TrainSpec {
                target: Target::Cap,
                max_value: Some(max_v),
                fit,
            }
        })
        .collect();
    let members = train_models(&harness.train, &specs, &harness.norm)
        .into_iter()
        .map(|(m, _)| m)
        .collect();
    let ensemble = CapEnsemble::new(members);

    // --- run the suite --------------------------------------------------
    let suite = table5_suite();
    eprintln!(
        "simulating {} testbenches / {} metrics x 5 annotations...",
        suite.len(),
        metric_count(&suite)
    );
    let method_names = [
        "Layout w/o parasitics",
        "Designer's Estimation",
        "Prediction w/ XGB",
        "Prediction w/ ParaGraph",
    ];
    let mut errors: [Vec<f64>; 4] = Default::default();
    let mut skipped = 0_usize;
    let mut metric_rows = Vec::new();

    for tb in &suite {
        // Ground truth + per-method cap annotations for this testbench.
        let truth = extract(&tb.circuit, &layout);
        let pc = {
            let mut pc = PreparedCircuit::new(tb.name.clone(), tb.circuit.clone(), &layout);
            pc.graph.normalize(&harness.norm);
            pc
        };
        let designer = designer_estimate(&tb.circuit, harness.config.seed ^ 0xD51);
        let xgb_caps = {
            let mut caps = vec![None; tb.circuit.num_nets()];
            for (node, value) in xgb.predict_labelled(&pc) {
                if let Some(net) = pc.graph.net_of_node[node as usize] {
                    caps[net.0 as usize] = Some(value);
                }
            }
            caps
        };
        let pg_caps = ensemble.predict_graph(&tb.circuit, &pc.graph);
        let none_caps = vec![None; tb.circuit.num_nets()];

        let reference = match tb.run(&truth.net_cap) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("  {}: reference simulation failed ({e}); skipping", tb.name);
                skipped += tb.metrics.len();
                continue;
            }
        };
        let annotations = [&none_caps, &designer, &xgb_caps, &pg_caps];
        let mut per_method: Vec<Vec<Option<f64>>> = Vec::new();
        for caps in annotations {
            per_method.push(
                tb.run(caps)
                    .unwrap_or_else(|_| vec![None; tb.metrics.len()]),
            );
        }
        for (mi, metric) in tb.metrics.iter().enumerate() {
            let Some(reference_v) = reference[mi] else {
                skipped += 1;
                continue;
            };
            if reference_v.abs() < 1e-15 {
                skipped += 1;
                continue;
            }
            let mut row = json!({
                "testbench": tb.name,
                "metric": metric.label(),
                "reference": reference_v,
            });
            for (k, vals) in per_method.iter().enumerate() {
                // A metric the annotated sim cannot even produce counts as
                // a 100 % miss.
                // Floor at 0.2 % (measurement resolution) so cap-
                // insensitive metrics don't collapse the geometric mean.
                let err = match vals[mi] {
                    Some(v) => ((v - reference_v) / reference_v).abs().max(0.002),
                    None => 1.0,
                };
                errors[k].push(err);
                row[method_names[k]] = json!(err);
            }
            metric_rows.push(row);
        }
    }

    // --- Table V ---------------------------------------------------------
    let total = errors[0].len();
    println!("\nTable V: simulation errors on {total} circuit metrics (paper: 67)");
    if skipped > 0 {
        println!("({skipped} metrics skipped: reference not measurable)");
    }
    print!("{:>14}", "Error Range");
    for name in method_names {
        print!(" {name:>22}");
    }
    println!();
    let hists: Vec<ErrorHistogram> = errors
        .iter()
        .map(|e| ErrorHistogram::from_relative_errors(e.iter()))
        .collect();
    for (bi, label) in ErrorHistogram::labels().iter().enumerate() {
        print!("{label:>14}");
        for h in &hists {
            print!(" {:>22}", h.buckets[bi]);
        }
        println!();
    }
    print!("{:>14}", "Mean");
    let means: Vec<f64> = errors
        .iter()
        .map(|e| e.iter().sum::<f64>() / e.len().max(1) as f64 * 100.0)
        .collect();
    for m in &means {
        print!(" {:>21.2}%", m);
    }
    println!();
    print!("{:>14}", "Geometric Mean");
    let geos: Vec<f64> = errors.iter().map(|e| geometric_mean(e) * 100.0).collect();
    for g in &geos {
        print!(" {:>21.2}%", g);
    }
    println!();

    println!("\nexpected shape (paper: mean 37.75% / >100% / 32.14% / 9.60%;");
    println!("geomean 29.01% / 43.57% / 15.46% / 4.00%): ParaGraph has the most");
    println!("metrics under 10% and the smallest mean + geometric mean.");

    write_json(
        &harness.config.out_dir,
        "table5_simulation",
        &json!({
            "methods": method_names,
            "buckets": ErrorHistogram::labels(),
            "histograms": hists.iter().map(|h| h.buckets.to_vec()).collect::<Vec<_>>(),
            "mean_pct": means,
            "geomean_pct": geos,
            "total_metrics": total,
            "skipped": skipped,
            "metrics": metric_rows,
            "epochs": harness.config.epochs,
            "scale": harness.config.scale,
        }),
    );
}
