//! `paragraph` command-line tool: train, save, and apply parasitic
//! predictors on SPICE netlists.
//!
//! ```text
//! paragraph_cli generate --scale 0.3 --seed 7 --out circuits/
//!     writes the synthetic dataset as SPICE decks + ground-truth JSON
//!
//! paragraph_cli train --target CAP --epochs 40 --model cap_model.json
//!     trains a ParaGraph model on the synthetic dataset and saves it
//!
//! paragraph_cli predict --model cap_model.json --netlist my_design.sp
//!     prints per-net (or per-device) predictions for a SPICE netlist
//!
//! paragraph_cli stats --netlist my_design.sp
//!     prints circuit and graph statistics
//!
//! paragraph_cli erc --netlist my_design.sp
//!     runs electrical rule checks (floating gates, dangling nets, ...)
//!
//! paragraph_cli serve --models models/ --addr 127.0.0.1:9107
//!     serves predictions over the JSON-lines TCP protocol
//!     (see docs/serving.md)
//! ```

use std::path::PathBuf;

use paragraph::{
    build_graph, fit_norm, normalize_circuits, FitConfig, GnnKind, PreparedCircuit, SavedModel,
    Target, TargetModel,
};
use paragraph_circuitgen::{paper_dataset, DatasetConfig, Split};
use paragraph_layout::{extract, LayoutConfig};
use paragraph_netlist::{parse_spice, write_flat_spice};
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "generate" => generate(&flags),
        "train" => train(&flags),
        "predict" => predict(&flags),
        "stats" => stats(&flags),
        "erc" => erc(&flags),
        "serve" => serve(&flags),
        _ => usage(),
    }
    // With PARAGRAPH_TRACE=1 every span recorded above lands in a
    // Chrome-trace file; a disabled run writes nothing.
    match paragraph_obs::flush_default_trace() {
        Ok(0) => {}
        Ok(n) => eprintln!(
            "wrote {n} trace events to {}",
            paragraph_obs::DEFAULT_TRACE_PATH
        ),
        Err(e) => eprintln!("could not write trace: {e}"),
    }
    // Likewise PARAGRAPH_EVENTS=1 flushes the structured event log.
    match paragraph_obs::flush_default_events() {
        Ok(0) => {}
        Ok(n) => eprintln!(
            "wrote {n} event records to {}",
            paragraph_obs::DEFAULT_EVENTS_PATH
        ),
        Err(e) => eprintln!("could not write events: {e}"),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: paragraph_cli <generate|train|predict|stats|erc|serve> [flags]\n\
         \n\
         generate --scale <f> --seed <n> --out <dir>\n\
         train    --target <CAP|SA|DA|SP|DP|LDE1..8|RES> --kind <name>\n\
         \x20        --epochs <n> --scale <f> --model <file.json>\n\
         predict  --model <file.json> --netlist <file.sp>\n\
         stats    --netlist <file.sp>\n\
         erc      --netlist <file.sp>\n\
         serve    --models <dir> --addr <host:port> --workers <n>\n\
         \x20        --queue <n> --cache <n>\n\
         \x20        --events <path>       periodic event-log flush target\n\
         \x20                              (env PARAGRAPH_EVENTS_PATH)\n\
         \x20        --event-sample <n>    log every nth ok request; errors\n\
         \x20                              and slow requests always logged\n\
         \x20                              (env PARAGRAPH_EVENT_SAMPLE)\n\
         \x20        --slow-ms <t>         slow-request threshold in ms\n\
         \x20                              (env PARAGRAPH_SLOW_MS)\n\
         \x20        --executor <on|off|auto>  inference path: compiled\n\
         \x20                              executor, autograd tape, or auto\n\
         \x20                              (executor when the model compiles;\n\
         \x20                              env PARAGRAPH_EXECUTOR)\n\
         \x20        --precision <f32|f16|int8>  compiled-path weight\n\
         \x20                              precision; artifact pins win\n\
         \x20                              (env PARAGRAPH_PRECISION)\n\
         \x20        --http-port <port>    also run the sharded gateway\n\
         \x20                              (HTTP/1.1 + JSON lines, protocol\n\
         \x20                              sniffing) on this port\n\
         \x20        --shards <n>          gateway shard count; 0 = one per\n\
         \x20                              core (env PARAGRAPH_SHARDS)\n\
         \x20        --max-queue <n>       per-shard queue bound before 503\n\
         \x20                              shedding (env PARAGRAPH_MAX_QUEUE)\n\
         \x20        --idle-ms <t>         gateway idle-connection reclaim\n\
         \x20                              deadline (env PARAGRAPH_IDLE_MS)\n\
         \x20        --batch-window-us <t> continuous micro-batching\n\
         \x20                              admission window in microseconds,\n\
         \x20                              deadline-budget clamped; 0 = off\n\
         \x20                              (env PARAGRAPH_BATCH_WINDOW_US)\n\
         \x20        --trace-store <n>     tail-sampled per-request trace\n\
         \x20                              store; n > 1 sets the retained\n\
         \x20                              ring capacity, served live at\n\
         \x20                              /debug/traces and /debug/dashboard\n\
         \x20                              (env PARAGRAPH_TRACE_STORE)\n\
         \x20        --trace-keep <n>      keep 1-in-n unremarkable requests\n\
         \x20                              (slow/error/shed/ood always kept;\n\
         \x20                              0 = remarkable only;\n\
         \x20                              env PARAGRAPH_TRACE_KEEP)\n\
         \n\
         PARAGRAPH_TRACE=1 records spans to target/trace.json (long-running\n\
         serve also streams them to target/trace_stream.json);\n\
         PARAGRAPH_EVENTS=1 records the structured event log"
    );
    std::process::exit(2)
}

struct Flags {
    entries: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut entries = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = &args[i];
            let Some(key) = key.strip_prefix("--") else {
                eprintln!("expected a --flag, got '{key}'");
                usage()
            };
            let Some(value) = args.get(i + 1) else {
                eprintln!("flag --{key} is missing its value");
                usage()
            };
            entries.push((key.to_owned(), value.clone()));
            i += 2;
        }
        Self { entries }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default)
    }

    fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default)
    }

    fn required(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage()
        })
    }
}

fn parse_target(name: &str) -> Target {
    Target::all_extended()
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown target '{name}'");
            usage()
        })
}

fn parse_kind(name: &str) -> GnnKind {
    GnnKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown model kind '{name}'");
            usage()
        })
}

fn build_training_set(scale: f64, seed: u64) -> (Vec<PreparedCircuit>, paragraph::FeatureNorm) {
    eprintln!("generating synthetic training dataset (scale {scale}, seed {seed})...");
    let dataset = paper_dataset(DatasetConfig { scale, seed });
    let layout = LayoutConfig::default();
    let mut train: Vec<PreparedCircuit> = dataset
        .into_iter()
        .filter(|c| c.split == Split::Train)
        .map(|c| PreparedCircuit::new(c.name, c.circuit, &layout))
        .collect();
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    (train, norm)
}

fn generate(flags: &Flags) {
    let scale = flags.f64_or("scale", 0.3);
    let seed = flags.u64_or("seed", 2020);
    let out = PathBuf::from(flags.get("out").unwrap_or("circuits"));
    std::fs::create_dir_all(&out).expect("create output dir");
    let layout = LayoutConfig::default();
    for dc in paper_dataset(DatasetConfig { scale, seed }) {
        let sp = out.join(format!("{}.sp", dc.name));
        std::fs::write(&sp, write_flat_spice(&dc.circuit)).expect("write spice");
        let truth = extract(&dc.circuit, &layout);
        let labels = json!({
            "circuit": dc.name,
            "split": format!("{:?}", dc.split),
            "net_cap_f": dc.circuit.nets().iter().enumerate().map(|(i, n)| {
                json!({"net": n.name, "cap": truth.net_cap[i], "res": truth.net_res[i]})
            }).collect::<Vec<_>>(),
        });
        let lj = out.join(format!("{}_truth.json", dc.name));
        std::fs::write(&lj, serde_json::to_string_pretty(&labels).expect("json"))
            .expect("write labels");
        println!("wrote {} and {}", sp.display(), lj.display());
    }
}

fn train(flags: &Flags) {
    let target = parse_target(flags.get("target").unwrap_or("CAP"));
    let kind = parse_kind(flags.get("kind").unwrap_or("ParaGraph"));
    let model_path = PathBuf::from(flags.get("model").unwrap_or("model.json"));
    let (train_set, norm) =
        build_training_set(flags.f64_or("scale", 0.25), flags.u64_or("seed", 2020));
    let mut fit = FitConfig::new(kind);
    fit.epochs = flags.u64_or("epochs", 40) as usize;
    eprintln!(
        "training {} model for {target} ({} epochs)...",
        kind.name(),
        fit.epochs
    );
    let (model, loss) = TargetModel::train(&train_set, target, None, fit, &norm);
    eprintln!("final loss {loss:.5}");
    std::fs::write(&model_path, SavedModel::from_model(&model).to_json()).expect("write model");
    println!("model saved to {}", model_path.display());
}

fn load_netlist(path: &str) -> paragraph_netlist::Circuit {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1)
    });
    parse_spice(&text)
        .unwrap_or_else(|e| {
            eprintln!("parse error in {path}: {e}");
            std::process::exit(1)
        })
        .flatten()
        .unwrap_or_else(|e| {
            eprintln!("flatten error in {path}: {e}");
            std::process::exit(1)
        })
}

fn predict(flags: &Flags) {
    let model_json = std::fs::read_to_string(flags.required("model")).unwrap_or_else(|e| {
        eprintln!("cannot read model: {e}");
        std::process::exit(1)
    });
    let model = SavedModel::from_json(&model_json)
        .and_then(SavedModel::into_model)
        .unwrap_or_else(|e| {
            eprintln!("cannot load model: {e}");
            std::process::exit(1)
        });
    let circuit = load_netlist(flags.required("netlist"));
    let preds = model.predict_circuit(&circuit);
    if model.target.on_nets() {
        println!("{:<24} {:>14}", "net", format!("{} pred", model.target));
        for (i, net) in circuit.nets().iter().enumerate() {
            if let Some(p) = preds[i] {
                let text = match model.target {
                    Target::Cap => format!("{:.4} fF", p * 1e15),
                    _ => format!("{:.2} ohm", p),
                };
                println!("{:<24} {:>14}", net.name, text);
            }
        }
    } else {
        println!("{:<24} {:>16}", "device", format!("{} pred", model.target));
        for (i, dev) in circuit.devices().iter().enumerate() {
            if let Some(p) = preds[i] {
                println!("{:<24} {:>16.6e}", dev.name, p);
            }
        }
    }
}

fn erc(flags: &Flags) {
    let circuit = load_netlist(flags.required("netlist"));
    let findings = paragraph_netlist::erc_check(&circuit);
    if findings.is_empty() {
        println!("erc clean: no findings");
        return;
    }
    println!("{} erc finding(s):", findings.len());
    for f in &findings {
        println!("  {}", f.describe(&circuit));
    }
    std::process::exit(1);
}

/// Flag value, falling back to an environment variable, then `default`.
/// A present-but-malformed flag aborts with usage; a malformed env var
/// silently falls through to the default.
fn u64_flag_env(flags: &Flags, key: &str, env: &str, default: u64) -> u64 {
    if let Some(v) = flags.get(key) {
        return v.parse().unwrap_or_else(|_| usage());
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--executor` flag, falling back to `PARAGRAPH_EXECUTOR`, then Auto.
/// Same precedence contract as [`u64_flag_env`]: a malformed flag aborts
/// with usage, a malformed env var silently defaults.
fn executor_flag_env(flags: &Flags) -> paragraph::ExecutorMode {
    use paragraph::ExecutorMode;
    if let Some(v) = flags.get("executor") {
        return ExecutorMode::parse(v).unwrap_or_else(|| {
            eprintln!("--executor expects on|off|auto, got '{v}'");
            usage()
        });
    }
    std::env::var("PARAGRAPH_EXECUTOR")
        .ok()
        .and_then(|v| ExecutorMode::parse(&v))
        .unwrap_or(ExecutorMode::Auto)
}

/// `--precision` flag, falling back to `PARAGRAPH_PRECISION`, then f32.
/// Same precedence contract as [`executor_flag_env`].
fn precision_flag_env(flags: &Flags) -> paragraph::Precision {
    use paragraph::Precision;
    if let Some(v) = flags.get("precision") {
        return Precision::parse(v).unwrap_or_else(|| {
            eprintln!("--precision expects f32|f16|int8, got '{v}'");
            usage()
        });
    }
    std::env::var("PARAGRAPH_PRECISION")
        .ok()
        .and_then(|v| Precision::parse(&v))
        .unwrap_or(Precision::F32)
}

fn serve(flags: &Flags) {
    use paragraph_serve::{Gateway, GatewayConfig, ModelRegistry, Server, Service, ServiceConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let models_dir = flags.required("models");
    let addr = flags.get("addr").unwrap_or("127.0.0.1:9107");
    let executor = executor_flag_env(flags);
    let precision = precision_flag_env(flags);
    // The process-wide defaults govern any model created outside the
    // registry (Auto-mode models defer to them); the registry stamps
    // both settings onto every loaded model so reloads keep the choice
    // (artifact precision pins win over the registry-wide setting).
    paragraph::set_executor_default(executor);
    paragraph::set_precision_default(precision);
    let registry = match ModelRegistry::open_with(models_dir, executor, Some(precision)) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("cannot load models from {models_dir}: {e}");
            std::process::exit(1)
        }
    };
    let event_sample = u64_flag_env(flags, "event-sample", "PARAGRAPH_EVENT_SAMPLE", 1).max(1);
    let slow_ms = u64_flag_env(flags, "slow-ms", "PARAGRAPH_SLOW_MS", 500);
    let events_path = flags
        .get("events")
        .map(str::to_owned)
        .or_else(|| std::env::var("PARAGRAPH_EVENTS_PATH").ok());
    let batch_window_us = u64_flag_env(flags, "batch-window-us", "PARAGRAPH_BATCH_WINDOW_US", 0);
    // Tail-sampled trace store: `--trace-store n` switches it on (n > 1
    // also sets the retained-ring capacity); a non-numeric
    // PARAGRAPH_TRACE_STORE like "on" still enables it through
    // `store_enabled`'s own env fallback.
    let trace_store_flag = u64_flag_env(flags, "trace-store", "PARAGRAPH_TRACE_STORE", 0);
    if trace_store_flag > 0 {
        paragraph_obs::set_store_enabled(true);
        if trace_store_flag > 1 {
            paragraph_obs::trace_store().set_capacity(trace_store_flag as usize);
        }
    }
    if paragraph_obs::store_enabled() {
        let trace_keep = u64_flag_env(
            flags,
            "trace-keep",
            "PARAGRAPH_TRACE_KEEP",
            paragraph_obs::DEFAULT_KEEP_ONE_IN,
        );
        let store = paragraph_obs::trace_store();
        store.set_keep_one_in(trace_keep);
        // The store's own slow cutoff tracks the event log's, so a
        // request logged slow is also always retained.
        store.set_slow_threshold_us(slow_ms as f64 * 1000.0);
        eprintln!(
            "trace store on: keeping slow/error/shed/ood requests plus 1/{trace_keep} sampled, \
             serving /debug/traces on the gateway"
        );
    }
    let config = ServiceConfig {
        workers: flags.u64_or("workers", 4).max(1) as usize,
        queue_capacity: flags.u64_or("queue", 64).max(1) as usize,
        cache_capacity: flags.u64_or("cache", 256) as usize,
        event_sample,
        slow_threshold: Duration::from_millis(slow_ms),
        batch_window: Duration::from_micros(batch_window_us),
        ..ServiceConfig::default()
    };
    let snapshot = registry.current();
    eprintln!(
        "loaded {} model(s): [{}]  (executor {}, precision {})",
        snapshot.models.len(),
        snapshot.keys().join(", "),
        executor.name(),
        precision.name()
    );
    if paragraph_obs::events_enabled() {
        eprintln!(
            "event log on: sampling 1/{event_sample} ok requests, slow threshold {slow_ms} ms{}",
            events_path
                .as_deref()
                .map(|p| format!(", flushing to {p}"))
                .unwrap_or_default()
        );
    }
    // Periodically flush buffered event records so a long-running server
    // doesn't hold (or drop) them until shutdown. Harmless when the
    // event log is disabled: there is nothing to write.
    if let Some(path) = events_path {
        let path = PathBuf::from(path);
        std::thread::Builder::new()
            .name("event-flusher".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(5));
                match paragraph_obs::write_events(&path) {
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("event-log flush to {} failed: {e}", path.display());
                        return;
                    }
                }
            })
            .expect("spawn event flusher");
    }
    // With tracing on, stream completed spans to an appendable
    // Chrome-trace array every few seconds. Without this, spans
    // buffered by worker threads would only surface at process exit —
    // which a long-running server never reaches — and a crash would
    // lose them all.
    if paragraph_obs::enabled() {
        std::thread::Builder::new()
            .name("trace-flusher".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(5));
                match paragraph_obs::append_trace_events(paragraph_obs::DEFAULT_TRACE_STREAM_PATH) {
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!(
                            "trace flush to {} failed: {e}",
                            paragraph_obs::DEFAULT_TRACE_STREAM_PATH
                        );
                        return;
                    }
                }
            })
            .expect("spawn trace flusher");
    }
    // Optional sharded gateway on a second port: HTTP/1.1 keep-alive
    // and JSON-lines with protocol sniffing, N thread-per-core shards.
    if let Some(http_port) = flags.get("http-port") {
        let Ok(port) = http_port.parse::<u16>() else {
            eprintln!("--http-port expects a port number, got '{http_port}'");
            usage()
        };
        let host = addr.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
        let gateway_addr = format!("{host}:{port}");
        let shards = u64_flag_env(flags, "shards", "PARAGRAPH_SHARDS", 0) as usize;
        let max_queue = u64_flag_env(
            flags,
            "max-queue",
            "PARAGRAPH_MAX_QUEUE",
            config.queue_capacity as u64,
        )
        .max(1) as usize;
        let idle_ms = u64_flag_env(flags, "idle-ms", "PARAGRAPH_IDLE_MS", 60_000).max(1);
        let gateway_config = GatewayConfig {
            shards,
            service: ServiceConfig {
                queue_capacity: max_queue,
                ..config.clone()
            },
            idle_deadline: Duration::from_millis(idle_ms),
            ..GatewayConfig::default()
        };
        let gateway = match Gateway::bind(&gateway_addr, registry.clone(), gateway_config) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("cannot bind gateway on {gateway_addr}: {e}");
                std::process::exit(1)
            }
        };
        println!(
            "gateway on {} ({} shard(s); HTTP/1.1 + JSON lines)",
            gateway.local_addr(),
            gateway.shard_count()
        );
        // The legacy server below runs forever; keep the gateway's
        // threads alive alongside it.
        std::mem::forget(gateway.spawn());
    }
    let service = Arc::new(Service::new(registry, config));
    let server = match Server::bind(addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1)
        }
    };
    println!(
        "serving on {} (JSON lines; see docs/serving.md)",
        server.local_addr()
    );
    server.run()
}

fn stats(flags: &Flags) {
    let circuit = load_netlist(flags.required("netlist"));
    let k = circuit.kind_counts();
    let cg = build_graph(&circuit);
    println!("circuit: {}", circuit.name);
    println!(
        "  nets {} (signal {})   devices {}",
        circuit.num_nets(),
        k.net,
        circuit.num_devices()
    );
    println!(
        "  tran {}  tran_th {}  res {}  cap {}  bjt {}  dio {}",
        k.tran, k.tran_th, k.res, k.cap, k.bjt, k.dio
    );
    println!(
        "graph: {} nodes, {} directed edges over {} edge types",
        cg.graph.num_nodes(),
        cg.graph.num_edges(),
        cg.graph.num_edge_types()
    );
}
