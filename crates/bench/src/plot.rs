//! Terminal scatter plots for the figure binaries.
//!
//! Renders predicted-vs-truth clouds on log-log axes the way the paper's
//! Figures 5 and 7 do, so the shape (diagonal tightness, low-end fan-out)
//! is visible directly in the experiment output.

/// Renders a log-log scatter of `(truth, prediction)` pairs.
///
/// Both axes span the data range; the diagonal (perfect prediction) is
/// drawn with `\\` marks, data with `o` (and `@` where many points
/// overlap). Non-positive values are clamped to the axis minimum.
pub fn log_scatter(title: &str, pairs: &[(f64, f64)], width: usize, height: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if pairs.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    let floor = 1e-30;
    let logs: Vec<(f64, f64)> = pairs
        .iter()
        .map(|&(t, p)| (t.max(floor).log10(), p.max(floor).log10()))
        .collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(t, p) in &logs {
        lo = lo.min(t).min(p);
        hi = hi.max(t).max(p);
    }
    if !(hi - lo).is_finite() || hi - lo < 1e-9 {
        hi = lo + 1.0;
    }
    let span = hi - lo;
    let cell = |v: f64, n: usize| -> usize {
        (((v - lo) / span) * (n - 1) as f64)
            .round()
            .clamp(0.0, (n - 1) as f64) as usize
    };

    let mut grid = vec![vec![0_u32; width]; height];
    for &(t, p) in &logs {
        let col = cell(t, width);
        let row = height - 1 - cell(p, height);
        grid[row][col] += 1;
    }
    for (r, row) in grid.iter().enumerate() {
        let y_val = hi - span * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:>7.1} |"));
        for (c, &count) in row.iter().enumerate() {
            // Diagonal marker where truth == prediction.
            let diag_row = height - 1 - cell(lo + span * c as f64 / (width - 1) as f64, height);
            let ch = match count {
                0 if diag_row == r => '\\',
                0 => ' ',
                1..=2 => 'o',
                _ => '@',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8}", " "));
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>8}{:<width$}\n",
        " ",
        format!("log10 truth: {lo:.1} .. {hi:.1} (y = log10 prediction)"),
    ));
    out
}

/// Renders a horizontal bar chart (used for Figure 6-style comparisons).
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|(_, v)| v.abs()).fold(1e-12, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
    for (label, value) in rows {
        let n = ((value.abs() / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} {}{} {value:.3}\n",
            if *value < 0.0 { "-" } else { " " },
            "#".repeat(n),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_renders_requested_size() {
        let pairs: Vec<(f64, f64)> = (1..50)
            .map(|i| (i as f64 * 1e-15, i as f64 * 1.1e-15))
            .collect();
        let s = log_scatter("test", &pairs, 40, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 13); // title + 10 rows + axis + label
        assert!(s.contains('o') || s.contains('@'));
    }

    #[test]
    fn perfect_predictions_sit_near_diagonal() {
        let pairs: Vec<(f64, f64)> = (1..100).map(|i| (i as f64, i as f64)).collect();
        let s = log_scatter("diag", &pairs, 30, 12);
        // The diagonal itself is covered by data, so few '\\' marks remain.
        let diag_marks = s.matches('\\').count();
        assert!(diag_marks < 12, "{s}");
    }

    #[test]
    fn empty_input_is_handled() {
        assert!(log_scatter("t", &[], 10, 5).contains("no data"));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_owned(), 1.0), ("bb".to_owned(), 0.5)];
        let s = bar_chart("t", &rows, 20);
        assert!(s.contains(&"#".repeat(20)));
        assert!(s.contains(&"#".repeat(10)));
    }
}
