//! Testbench suite for the Table V study: small circuits with defined
//! stimulus and measurable metrics (insertion delay, slew, power, DC
//! levels), built from the same block vocabulary as the dataset so the
//! trained models see in-distribution structures.

use paragraph_circuitgen::{grow_chip, BlockKind, ChipBuilder, Family};
use paragraph_netlist::{Circuit, NetId};
use paragraph_sim::{
    average_power, cross_time, delay_50, slew_10_90, to_sim, transient, ConvertOptions,
    SimulateError, TranResult,
};

/// A metric to measure on a simulated testbench.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSpec {
    /// 50 %-to-50 % delay from `input` to `output`.
    Delay {
        /// Driven input net name.
        input: String,
        /// Observed output net name.
        output: String,
        /// Whether the output edge rises.
        out_rising: bool,
    },
    /// 10–90 % transition time on a node.
    Slew {
        /// Observed net name.
        node: String,
        /// Edge direction.
        rising: bool,
    },
    /// Average core-supply power.
    Power,
    /// Final (end-of-transient) voltage of a node.
    FinalLevel {
        /// Observed net name.
        node: String,
    },
    /// Time at which a node first crosses half-swing.
    CrossTime {
        /// Observed net name.
        node: String,
        /// Edge direction.
        rising: bool,
    },
}

impl MetricSpec {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            MetricSpec::Delay { output, .. } => format!("delay->{output}"),
            MetricSpec::Slew { node, rising } => {
                format!("slew[{}]{node}", if *rising { "r" } else { "f" })
            }
            MetricSpec::Power => "power".into(),
            MetricSpec::FinalLevel { node } => format!("dc {node}"),
            MetricSpec::CrossTime { node, .. } => format!("tcross {node}"),
        }
    }
}

/// A testbench: circuit + pulse-driven inputs + metric list.
#[derive(Debug, Clone)]
pub struct Testbench {
    /// Name for reports.
    pub name: String,
    /// The schematic (stimulus sources are added at simulation time).
    pub circuit: Circuit,
    /// Nets driven with the standard input pulse.
    pub pulse_inputs: Vec<String>,
    /// Nets held at DC `(name, volts)`.
    pub dc_inputs: Vec<(String, f64)>,
    /// Metrics to extract.
    pub metrics: Vec<MetricSpec>,
}

/// Simulation window used by every testbench.
const T_STOP: f64 = 6e-9;
const DT: f64 = 6e-12;
const VDD: f64 = 0.9;

/// Chip context surrounding each instrumented block. The paper measures
/// its metrics inside the full testing circuits, so the devices under test
/// must sit in dataset-like placement context (otherwise wirelengths — and
/// hence true parasitics — fall outside the training distribution).
/// Digital-ish mix without free-running oscillators, for DC robustness.
const CONTEXT_FAMILY: Family = &[
    (BlockKind::BufferChain, 4.0),
    (BlockKind::Nand, 3.0),
    (BlockKind::Nor, 3.0),
    (BlockKind::DLatch, 1.5),
    (BlockKind::Mirror, 1.0),
    (BlockKind::RcFilter, 0.8),
];

/// Number of context blocks per testbench.
const CONTEXT_BLOCKS: usize = 10;

/// Creates a chip builder pre-populated with context blocks.
fn chip_with_context(name: String, seed: u64) -> ChipBuilder {
    let mut chip = ChipBuilder::new(name, seed);
    grow_chip(&mut chip, CONTEXT_FAMILY, CONTEXT_BLOCKS);
    chip
}

impl Testbench {
    /// Simulates with the given per-net cap annotation (`None` entries
    /// skipped) and returns one value per metric (`None` when the metric
    /// could not be measured).
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] when the operating point or transient
    /// fails.
    pub fn run(&self, caps: &[Option<f64>]) -> Result<Vec<Option<f64>>, SimulateError> {
        let mut mapping = to_sim(&self.circuit, &ConvertOptions::default());
        mapping.annotate_caps(caps);
        for name in &self.pulse_inputs {
            let net = self.net(name);
            mapping.drive_pulse(net, 0.0, VDD, 0.4e-9, 30e-12);
        }
        for (name, volts) in &self.dc_inputs {
            let net = self.net(name);
            mapping.drive_dc(net, *volts);
        }
        let tran = transient(&mapping.sim, T_STOP, DT)?;
        Ok(self
            .metrics
            .iter()
            .map(|m| self.measure(m, &mapping, &tran))
            .collect())
    }

    /// Like [`Testbench::run`] but annotating an RC π-model per net (see
    /// `SimMapping::annotate_rc`) — used by the trace-resistance
    /// extension.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] when the simulation fails.
    pub fn run_rc(
        &self,
        caps: &[Option<f64>],
        ress: &[Option<f64>],
    ) -> Result<Vec<Option<f64>>, SimulateError> {
        let mut mapping = to_sim(&self.circuit, &ConvertOptions::default());
        mapping.annotate_rc(caps, ress);
        for name in &self.pulse_inputs {
            let net = self.net(name);
            mapping.drive_pulse(net, 0.0, VDD, 0.4e-9, 30e-12);
        }
        for (name, volts) in &self.dc_inputs {
            let net = self.net(name);
            mapping.drive_dc(net, *volts);
        }
        let tran = transient(&mapping.sim, T_STOP, DT)?;
        Ok(self
            .metrics
            .iter()
            .map(|m| self.measure(m, &mapping, &tran))
            .collect())
    }

    fn net(&self, name: &str) -> NetId {
        self.circuit
            .find_net(name)
            .unwrap_or_else(|| panic!("testbench {} has no net '{name}'", self.name))
    }

    fn measure(
        &self,
        metric: &MetricSpec,
        mapping: &paragraph_sim::SimMapping,
        tran: &TranResult,
    ) -> Option<f64> {
        let wave = |name: &str| tran.node_wave(mapping.node(self.net(name)));
        match metric {
            MetricSpec::Delay {
                input,
                output,
                out_rising,
            } => delay_50(&tran.times, &wave(input), &wave(output), VDD, *out_rising),
            MetricSpec::Slew { node, rising } => slew_10_90(&tran.times, &wave(node), VDD, *rising),
            MetricSpec::Power => {
                let k = mapping.vdd_source?;
                Some(average_power(VDD, &tran.source_current(k)))
            }
            MetricSpec::FinalLevel { node } => wave(node).last().copied(),
            MetricSpec::CrossTime { node, rising } => {
                cross_time(&tran.times, &wave(node), VDD / 2.0, *rising, 0.0)
            }
        }
    }
}

fn net_name(c: &Circuit, id: NetId) -> String {
    c.net_ref(id).name.clone()
}

fn buffer_chain_tb(idx: u64, stages: usize) -> Testbench {
    let mut chip = chip_with_context(format!("tb_buf{idx}"), 9_000 + idx);
    let input = chip.fresh_net("in");
    let out = chip.buffer_chain(input, stages);
    let circuit = chip.into_circuit();
    let in_name = net_name(&circuit, input);
    let out_name = net_name(&circuit, out);
    let out_rising = stages.is_multiple_of(2);
    Testbench {
        name: format!("buf{stages}_{idx}"),
        pulse_inputs: vec![in_name.clone()],
        dc_inputs: vec![],
        metrics: vec![
            MetricSpec::Delay {
                input: in_name,
                output: out_name.clone(),
                out_rising,
            },
            MetricSpec::Slew {
                node: out_name.clone(),
                rising: out_rising,
            },
            MetricSpec::Power,
            MetricSpec::CrossTime {
                node: out_name,
                rising: out_rising,
            },
        ],
        circuit,
    }
}

fn nand_path_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_nand{idx}"), 9_100 + idx);
    let a = chip.fresh_net("a");
    let b = chip.fresh_net("b");
    let y = chip.fresh_net("y");
    chip.nand2(a, b, y);
    let out = chip.buffer_chain(y, 2);
    let circuit = chip.into_circuit();
    let (a_n, out_n) = (net_name(&circuit, a), net_name(&circuit, out));
    let b_n = net_name(&circuit, b);
    Testbench {
        name: format!("nand_path_{idx}"),
        pulse_inputs: vec![a_n.clone()],
        dc_inputs: vec![(b_n, VDD)],
        metrics: vec![
            // NAND inverts, two buffers keep polarity: falling output.
            MetricSpec::Delay {
                input: a_n,
                output: out_n.clone(),
                out_rising: false,
            },
            MetricSpec::Slew {
                node: out_n,
                rising: false,
            },
            MetricSpec::Power,
        ],
        circuit,
    }
}

fn nor_path_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_nor{idx}"), 9_200 + idx);
    let a = chip.fresh_net("a");
    let b = chip.fresh_net("b");
    let y = chip.fresh_net("y");
    chip.nor2(a, b, y);
    let out = chip.buffer_chain(y, 2);
    let circuit = chip.into_circuit();
    let (a_n, out_n) = (net_name(&circuit, a), net_name(&circuit, out));
    let b_n = net_name(&circuit, b);
    Testbench {
        name: format!("nor_path_{idx}"),
        pulse_inputs: vec![a_n.clone()],
        dc_inputs: vec![(b_n, 0.0)],
        metrics: vec![
            MetricSpec::Delay {
                input: a_n,
                output: out_n.clone(),
                out_rising: false,
            },
            MetricSpec::Slew {
                node: out_n,
                rising: false,
            },
            MetricSpec::Power,
        ],
        circuit,
    }
}

fn level_shifter_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_ls{idx}"), 9_300 + idx);
    let input = chip.fresh_net("in");
    let out = chip.level_shifter(input);
    let circuit = chip.into_circuit();
    let (in_n, out_n) = (net_name(&circuit, input), net_name(&circuit, out));
    Testbench {
        name: format!("level_shifter_{idx}"),
        pulse_inputs: vec![in_n.clone()],
        dc_inputs: vec![],
        metrics: vec![
            MetricSpec::Delay {
                input: in_n,
                output: out_n.clone(),
                out_rising: true,
            },
            MetricSpec::Slew {
                node: out_n.clone(),
                rising: true,
            },
            MetricSpec::Power,
        ],
        circuit,
    }
}

fn rc_filter_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_rc{idx}"), 9_400 + idx);
    let input = chip.fresh_net("in");
    let driven = chip.buffer_chain(input, 2);
    let out = chip.rc_filter(driven);
    let circuit = chip.into_circuit();
    let (in_n, out_n) = (net_name(&circuit, input), net_name(&circuit, out));
    Testbench {
        name: format!("rc_filter_{idx}"),
        pulse_inputs: vec![in_n.clone()],
        dc_inputs: vec![],
        metrics: vec![
            MetricSpec::CrossTime {
                node: out_n.clone(),
                rising: true,
            },
            MetricSpec::Slew {
                node: out_n.clone(),
                rising: true,
            },
            MetricSpec::FinalLevel { node: out_n },
        ],
        circuit,
    }
}

fn tgate_path_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_tg{idx}"), 9_500 + idx);
    let input = chip.fresh_net("in");
    let driven = chip.buffer_chain(input, 1);
    let mid = chip.fresh_net("mid");
    let ctl = chip.fresh_net("ctl");
    let ctlb = chip.fresh_net("ctlb");
    chip.transmission_gate(driven, mid, ctl, ctlb);
    let out = chip.buffer_chain(mid, 1);
    let circuit = chip.into_circuit();
    let (in_n, out_n) = (net_name(&circuit, input), net_name(&circuit, out));
    let (ctl_n, ctlb_n) = (net_name(&circuit, ctl), net_name(&circuit, ctlb));
    Testbench {
        name: format!("tgate_path_{idx}"),
        pulse_inputs: vec![in_n.clone()],
        dc_inputs: vec![(ctl_n, VDD), (ctlb_n, 0.0)],
        metrics: vec![
            // Two inversions: output follows input polarity (rising).
            MetricSpec::Delay {
                input: in_n,
                output: out_n.clone(),
                out_rising: true,
            },
            MetricSpec::Slew {
                node: out_n,
                rising: true,
            },
            MetricSpec::Power,
        ],
        circuit,
    }
}

fn charge_pump_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_cp{idx}"), 9_600 + idx);
    let up = chip.fresh_net("up");
    let dn = chip.fresh_net("dn");
    let out = chip.charge_pump(up, dn);
    let circuit = chip.into_circuit();
    let (up_n, dn_n) = (net_name(&circuit, up), net_name(&circuit, dn));
    let out_n = net_name(&circuit, out);
    Testbench {
        name: format!("charge_pump_{idx}"),
        // up low (PMOS on) pumps the output high; dn held low.
        pulse_inputs: vec![],
        dc_inputs: vec![(up_n, 0.0), (dn_n, 0.0)],
        metrics: vec![
            MetricSpec::FinalLevel {
                node: out_n.clone(),
            },
            MetricSpec::CrossTime {
                node: out_n,
                rising: true,
            },
        ],
        circuit,
    }
}

fn bias_ladder_tb(idx: u64) -> Testbench {
    let mut chip = chip_with_context(format!("tb_ladder{idx}"), 9_700 + idx);
    let taps = chip.bias_ladder(3);
    let circuit = chip.into_circuit();
    let metrics = taps
        .iter()
        .map(|&t| MetricSpec::FinalLevel {
            node: net_name(&circuit, t),
        })
        .collect();
    Testbench {
        name: format!("bias_ladder_{idx}"),
        pulse_inputs: vec![],
        dc_inputs: vec![],
        metrics,
        circuit,
    }
}

/// The full Table V testbench suite: 18 benches totalling 67 metrics,
/// matching the paper's "67 key circuit metrics".
pub fn table5_suite() -> Vec<Testbench> {
    let mut suite = Vec::new();
    for (i, stages) in [3, 4, 5, 6, 4].iter().enumerate() {
        suite.push(buffer_chain_tb(i as u64, *stages)); // 5 x 4 = 20
    }
    for i in 0..3 {
        suite.push(nand_path_tb(i)); // 3 x 3 = 9
    }
    for i in 0..2 {
        suite.push(nor_path_tb(i)); // 2 x 3 = 6
    }
    for i in 0..2 {
        suite.push(level_shifter_tb(i)); // 2 x 3 = 6
    }
    for i in 0..3 {
        suite.push(rc_filter_tb(i)); // 3 x 3 = 9
    }
    for i in 0..2 {
        suite.push(tgate_path_tb(i)); // 2 x 3 = 6
    }
    for i in 0..2 {
        suite.push(charge_pump_tb(i)); // 2 x 2 = 4
    }
    suite.push(bias_ladder_tb(0)); // 3
                                   // Pad to exactly 67 with one more nand path (3) ... 20+9+6+6+9+6+4+3 = 63.
    suite.push(nand_path_tb(7)); // 66
    suite.push(charge_pump_tb(7)); // 68 -> trim one metric below
    if let Some(last) = suite.last_mut() {
        last.metrics.truncate(1); // 67
    }
    suite
}

/// Total metric count across a suite.
pub fn metric_count(suite: &[Testbench]) -> usize {
    suite.iter().map(|tb| tb.metrics.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_67_metrics_like_the_paper() {
        let suite = table5_suite();
        assert_eq!(metric_count(&suite), 67);
    }

    #[test]
    fn all_testbenches_validate() {
        for tb in table5_suite() {
            tb.circuit.validate().unwrap();
            for name in tb
                .pulse_inputs
                .iter()
                .chain(tb.dc_inputs.iter().map(|(n, _)| n))
            {
                assert!(tb.circuit.find_net(name).is_some(), "{}: {name}", tb.name);
            }
        }
    }

    #[test]
    fn buffer_chain_simulates_without_caps() {
        let tb = buffer_chain_tb(0, 4);
        let caps = vec![None; tb.circuit.num_nets()];
        let values = tb.run(&caps).unwrap();
        // Delay, slew, power, cross-time all measurable.
        assert!(values.iter().all(|v| v.is_some()), "{values:?}");
        assert!(values[0].unwrap() > 0.0);
    }

    #[test]
    fn caps_increase_buffer_delay() {
        let tb = buffer_chain_tb(1, 4);
        let no_caps = vec![None; tb.circuit.num_nets()];
        let d0 = tb.run(&no_caps).unwrap()[0].unwrap();
        let heavy: Vec<Option<f64>> = tb
            .circuit
            .nets()
            .iter()
            .map(|n| (n.class == paragraph_netlist::NetClass::Signal).then_some(30e-15))
            .collect();
        let d1 = tb.run(&heavy).unwrap()[0].unwrap();
        assert!(d1 > d0 * 1.3, "delay {d0} -> {d1}");
    }

    #[test]
    fn bias_ladder_levels_are_monotone() {
        let tb = bias_ladder_tb(5);
        let caps = vec![None; tb.circuit.num_nets()];
        let values: Vec<f64> = tb.run(&caps).unwrap().into_iter().flatten().collect();
        assert_eq!(values.len(), 3);
        // Taps descend from vdd to vss.
        assert!(values[0] > values[1] && values[1] > values[2], "{values:?}");
    }
}
