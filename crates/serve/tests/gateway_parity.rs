//! Shard parity: predictions served by a 1-shard gateway, an N-shard
//! gateway, and the direct in-process ensemble are bitwise identical;
//! per-shard metric counters sum to the aggregate totals; a `reload`
//! on one shard refreshes every sibling's cache. A `#[ignore]`d soak
//! test hammers a gateway from many keep-alive connections under a
//! counting allocator and asserts every request is answered with
//! bounded live-memory growth.

mod common;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use common::{
    build_model_dir, direct_reference, predict_line, response_predictions, start_gateway,
    test_service_config, HttpClient, LineClient, NETLIST_A, NETLIST_B,
};
use paragraph_serve::GatewayConfig;
use serde_json::Value;

/// Wraps the system allocator and tracks live bytes (allocated minus
/// freed) so the soak test can bound steady-state memory growth.
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn live_bytes() -> i64 {
    let allocated = ALLOCATED.load(Ordering::Relaxed);
    let freed = FREED.load(Ordering::Relaxed);
    i64::try_from(allocated).unwrap_or(i64::MAX) - i64::try_from(freed).unwrap_or(i64::MAX)
}

/// The serialised `result` payloads (cold then cached) a fresh
/// connection observes for `netlist`; serialisation makes "bitwise
/// identical" directly comparable across gateways.
fn served_results(client: &mut LineClient, base_id: u64, netlist: &str) -> (String, String) {
    let cold = client.roundtrip(&predict_line(base_id, netlist, None));
    assert_eq!(cold["ok"].as_bool(), Some(true), "{cold:?}");
    let warm = client.roundtrip(&predict_line(base_id + 1, netlist, None));
    assert_eq!(warm["cached"].as_bool(), Some(true), "{warm:?}");
    (
        serde_json::to_string(&cold["result"]).unwrap(),
        serde_json::to_string(&warm["result"]).unwrap(),
    )
}

#[test]
fn predictions_are_bitwise_identical_across_shard_counts() {
    let (dir, ensemble) = build_model_dir("shardparity");
    let single = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    let sharded = start_gateway(
        &dir,
        GatewayConfig {
            shards: 4,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    for netlist in [NETLIST_A, NETLIST_B] {
        let expected = direct_reference(&ensemble, netlist);
        let mut one = LineClient::connect(single.addr());
        let (cold_1, warm_1) = served_results(&mut one, 10, netlist);
        assert_eq!(cold_1, warm_1, "cache must serve the identical payload");

        // Four sequential connections land on four different shards
        // (accept-time round robin); every shard must serve the same
        // bytes as the single-shard gateway and the direct reference.
        for conn in 0..4 {
            let mut client = LineClient::connect(sharded.addr());
            let cold = client.roundtrip(&predict_line(100 + conn, netlist, None));
            assert_eq!(cold["ok"].as_bool(), Some(true), "{cold:?}");
            assert_eq!(
                serde_json::to_string(&cold["result"]).unwrap(),
                cold_1,
                "shard served different bytes than the 1-shard gateway"
            );
            assert_eq!(response_predictions(&cold), expected);
        }
    }

    single.shutdown();
    sharded.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn endpoint_requests(snapshot: &Value, op: &str) -> u64 {
    snapshot["endpoints"]
        .as_array()
        .expect("endpoints array")
        .iter()
        .find(|e| e["op"].as_str() == Some(op))
        .and_then(|e| e["requests"].as_u64())
        .expect("op entry")
}

#[test]
fn per_shard_counters_sum_to_aggregate_totals() {
    let (dir, _ensemble) = build_model_dir("shardsums");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 4,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    // 4 connections × 6 predicts: round robin spreads them over all
    // four shards, one connection each.
    let mut clients: Vec<LineClient> = (0..4).map(|_| LineClient::connect(handle.addr())).collect();
    for (c, client) in clients.iter_mut().enumerate() {
        for i in 0..6_u64 {
            let netlist = if i % 2 == 0 { NETLIST_A } else { NETLIST_B };
            let v = client.roundtrip(&predict_line(c as u64 * 100 + i, netlist, None));
            assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        }
    }

    let snapshot = HttpClient::connect(handle.addr())
        .get("/metrics.json")
        .json();
    assert_eq!(snapshot["shard_count"].as_u64(), Some(4));
    let shards = snapshot["shards"].as_array().expect("shards array");
    assert_eq!(shards.len(), 4);

    // Aggregate predict total equals what we sent, and equals the sum
    // of the per-shard counters — which the round robin spread across
    // every shard.
    let total = endpoint_requests(&snapshot["totals"], "predict");
    assert_eq!(total, 24);
    let per_shard: Vec<u64> = shards
        .iter()
        .map(|s| endpoint_requests(s, "predict"))
        .collect();
    assert_eq!(per_shard.iter().sum::<u64>(), total);
    assert_eq!(per_shard, vec![6, 6, 6, 6], "round robin should balance");

    // Cache totals aggregate the same way (each shard warmed its own
    // cache: 2 misses then 4 hits per shard).
    assert_eq!(snapshot["totals"]["cache"]["misses"].as_u64(), Some(8));
    assert_eq!(snapshot["totals"]["cache"]["hits"].as_u64(), Some(16));

    // The handle exposes the same per-shard services the snapshot saw.
    assert_eq!(handle.services().len(), 4);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_on_one_shard_refreshes_every_sibling_cache() {
    let (dir, _ensemble) = build_model_dir("reloadfan");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    // Warm both shards' caches (connection k pins to shard k).
    let mut shard0 = LineClient::connect(handle.addr());
    let mut shard1 = LineClient::connect(handle.addr());
    for client in [&mut shard0, &mut shard1] {
        let cold = client.roundtrip(&predict_line(1, NETLIST_A, None));
        assert_eq!(cold["cached"].as_bool(), Some(false), "{cold:?}");
        let warm = client.roundtrip(&predict_line(2, NETLIST_A, None));
        assert_eq!(warm["cached"].as_bool(), Some(true), "{warm:?}");
    }

    // Reload through shard 0 only.
    let r = shard0.roundtrip(r#"{"op": "reload", "id": 3}"#);
    assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");

    // Shard 1's cache must have been cleared by the fan-out hook: the
    // next identical request is a miss again.
    let after = shard1.roundtrip(&predict_line(4, NETLIST_A, None));
    assert_eq!(
        after["cached"].as_bool(),
        Some(false),
        "sibling shard served a stale cache entry after reload: {after:?}"
    );
    let rewarmed = shard1.roundtrip(&predict_line(5, NETLIST_A, None));
    assert_eq!(rewarmed["cached"].as_bool(), Some(true));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Soak: many keep-alive connections hammer a 2-shard gateway; every
/// request must be answered correctly and live heap growth between the
/// warm-up checkpoint and the end must stay bounded (no per-request
/// leak). Run with `cargo test -p paragraph-serve --test gateway_parity
/// -- --ignored`.
#[test]
#[ignore = "soak test: run explicitly (CI test-gateway job)"]
fn soak_keepalive_connections_bounded_memory() {
    const CLIENTS: usize = 8;
    const WARMUP: u64 = 50;
    const REQUESTS: u64 = 500;

    let (dir, _ensemble) = build_model_dir("soak");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    let addr = handle.addr();

    let run = |requests: u64, base: u64| {
        std::thread::scope(|scope| {
            for client_id in 0..CLIENTS {
                scope.spawn(move || {
                    let mut client = LineClient::connect(addr);
                    let mut http = HttpClient::connect(addr);
                    for i in 0..requests {
                        let id = base + client_id as u64 * 1_000_000 + i;
                        let netlist = if i % 2 == 0 { NETLIST_A } else { NETLIST_B };
                        let v = client.roundtrip(&predict_line(id, netlist, None));
                        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
                        assert_eq!(v["id"].as_u64(), Some(id), "answer for the wrong request");
                        if i % 50 == 0 {
                            assert_eq!(http.get("/health").status, 200);
                        }
                    }
                });
            }
        });
    };

    // Warm-up fills caches, arenas, metric windows, connection buffers.
    run(WARMUP, 0);
    let checkpoint = live_bytes();

    run(REQUESTS, 10_000_000);
    let growth = live_bytes() - checkpoint;
    assert!(
        growth < 32 * 1024 * 1024,
        "live heap grew {growth} bytes over {} requests",
        CLIENTS as u64 * REQUESTS
    );

    // Every shard is still healthy and the totals add up.
    let snapshot = HttpClient::connect(addr).get("/metrics.json").json();
    let total = endpoint_requests(&snapshot["totals"], "predict");
    assert_eq!(total, CLIENTS as u64 * (WARMUP + REQUESTS));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
