//! Network fault injection against the gateway: slow-loris stalls,
//! mid-body disconnects, oversized heads and bodies, garbage bytes,
//! pipelined bursts — the gateway must never panic, must time abusive
//! connections out on a deadline, and must keep serving well-behaved
//! clients throughout. Also pins the legacy JSON-lines server's
//! stalled-connection reclaim (read timeout) as a regression test.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use common::{
    build_model_dir, predict_line, start_gateway, test_service_config, HttpClient, LineClient,
    NETLIST_A, NETLIST_B,
};
use paragraph_serve::{GatewayConfig, LoadedModels, ModelRegistry, Server, Service, ServiceConfig};

/// A gateway with short abuse deadlines: stalls time out after 300ms.
fn abuse_config(shards: usize) -> GatewayConfig {
    GatewayConfig {
        shards,
        service: test_service_config(),
        read_deadline: Duration::from_millis(300),
        ..GatewayConfig::default()
    }
}

#[test]
fn http_slow_loris_gets_408_while_good_clients_are_served() {
    let (dir, _ensemble) = build_model_dir("loris-http");
    // One shard: the attacker and the good clients share an event loop,
    // so this also proves a stalled socket cannot wedge the loop.
    let handle = start_gateway(&dir, abuse_config(1));

    // The attacker trickles out half a request line and stops.
    let mut attacker = HttpClient::connect(handle.addr());
    attacker.stream.write_all(b"POST /pre").expect("write");

    // Good clients on BOTH protocols keep getting answers meanwhile.
    let mut line = LineClient::connect(handle.addr());
    let mut http = HttpClient::connect(handle.addr());
    for id in 0..5 {
        let v = line.roundtrip(&predict_line(id, NETLIST_A, None));
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        assert_eq!(http.get("/health").status, 200);
    }

    // Past the read deadline the attacker gets a 408 and the close.
    std::thread::sleep(Duration::from_millis(500));
    let r = attacker.read_response().expect("timeout response");
    assert_eq!(r.status, 408);
    assert_eq!(
        r.json()["error"]["code"].as_str(),
        Some("deadline_exceeded")
    );
    attacker.assert_closed();

    // The gateway is still healthy afterwards.
    assert_eq!(http.get("/health").status, 200);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_lines_slow_loris_gets_structured_timeout() {
    let (dir, _ensemble) = build_model_dir("loris-line");
    let handle = start_gateway(&dir, abuse_config(1));

    // Half a JSON object, no newline, then silence.
    let mut attacker = LineClient::connect(handle.addr());
    attacker
        .writer
        .write_all(br#"{"op": "predi"#)
        .expect("write");
    std::thread::sleep(Duration::from_millis(500));

    let v: serde_json::Value =
        serde_json::from_str(&attacker.recv_raw()).expect("timeout line is JSON");
    assert_eq!(v["ok"].as_bool(), Some(false));
    assert_eq!(v["error"]["code"].as_str(), Some("deadline_exceeded"));
    let mut rest = String::new();
    assert_eq!(
        attacker.reader.read_to_string(&mut rest).expect("EOF"),
        0,
        "connection must be closed after the timeout line"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_body_disconnect_and_truncated_fin_are_harmless() {
    let (dir, _ensemble) = build_model_dir("midbody");
    let handle = start_gateway(&dir, abuse_config(1));

    // Promise 1000 body bytes, send 10, vanish without a FIN handshake.
    {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut s = stream.try_clone().unwrap();
        s.write_all(b"POST /predict HTTP/1.1\r\nContent-Length: 1000\r\n\r\n0123456789")
            .unwrap();
        drop(s);
        stream.shutdown(Shutdown::Both).unwrap();
    }

    // Promise a request, send a fragment, half-close (FIN) and wait:
    // the fragment can never complete, so the read deadline must
    // answer 408 and drop the connection.
    let mut fin = HttpClient::connect(handle.addr());
    fin.stream.write_all(b"GET /hea").unwrap();
    fin.stream.shutdown(Shutdown::Write).unwrap();
    let r = fin.read_response().expect("timeout response");
    assert_eq!(r.status, 408);
    fin.assert_closed();

    // Nothing panicked; the shard still serves.
    let mut good = HttpClient::connect(handle.addr());
    assert_eq!(good.get("/health").status, 200);
    let v = LineClient::connect(handle.addr()).roundtrip(&predict_line(1, NETLIST_B, None));
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_head_and_body_are_rejected_with_limits_statuses() {
    let (dir, _ensemble) = build_model_dir("oversize");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            max_header: 256,
            max_body: 1024,
            max_line: 1024,
            ..GatewayConfig::default()
        },
    );

    // Head past max_header: 431, even before CRLF CRLF arrives.
    let mut c = HttpClient::connect(handle.addr());
    let huge = format!(
        "GET /health HTTP/1.1\r\nX-Filler: {}\r\n\r\n",
        "x".repeat(512)
    );
    let r = c.request_raw(huge.as_bytes());
    assert_eq!(r.status, 431);
    c.assert_closed();

    // Declared body past max_body: 413 immediately, body never read.
    let mut c = HttpClient::connect(handle.addr());
    let r = c.request_raw(b"POST /predict HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
    assert_eq!(r.status, 413);
    c.assert_closed();

    // JSON line past max_line: structured bad_request, then close.
    let mut c = LineClient::connect(handle.addr());
    c.writer
        .write_all(format!("{{\"op\": \"predict\", \"pad\": \"{}\"", "y".repeat(2048)).as_bytes())
        .unwrap();
    let v: serde_json::Value = serde_json::from_str(&c.recv_raw()).unwrap();
    assert_eq!(v["error"]["code"].as_str(), Some("bad_request"));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_bytes_get_400_and_fresh_connections_recover() {
    let (dir, _ensemble) = build_model_dir("garbage");
    let handle = start_gateway(&dir, abuse_config(1));

    let mut c = HttpClient::connect(handle.addr());
    let r = c.request_raw(b"\x01\x02\xff\xfe binary noise\r\n\r\n");
    assert_eq!(r.status, 400);
    c.assert_closed();

    let v = LineClient::connect(handle.addr()).roundtrip(&predict_line(7, NETLIST_A, None));
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_json_line_keeps_the_connection_open() {
    let (dir, _ensemble) = build_model_dir("badline");
    let handle = start_gateway(&dir, abuse_config(1));

    let mut c = LineClient::connect(handle.addr());
    let bad = c.roundtrip("{not json at all");
    assert_eq!(bad["ok"].as_bool(), Some(false));
    assert_eq!(bad["error"]["code"].as_str(), Some("bad_request"));

    // Same connection, next request is served normally.
    let good = c.roundtrip(&predict_line(1, NETLIST_A, None));
    assert_eq!(good["ok"].as_bool(), Some(true), "{good:?}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_json_lines_burst_is_answered_in_order() {
    let (dir, _ensemble) = build_model_dir("lineburst");
    let handle = start_gateway(&dir, abuse_config(2));

    let mut c = LineClient::connect(handle.addr());
    let mut burst = String::new();
    for id in 0..20_u64 {
        let netlist = if id % 2 == 0 { NETLIST_A } else { NETLIST_B };
        burst.push_str(&predict_line(id, netlist, None));
        burst.push('\n');
    }
    c.writer.write_all(burst.as_bytes()).expect("write burst");
    for id in 0..20_u64 {
        let v: serde_json::Value = serde_json::from_str(&c.recv_raw()).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        assert_eq!(v["id"].as_u64(), Some(id), "responses out of order");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_server_reclaims_stalled_connections() {
    // Regression: the thread-per-connection server used to block in
    // `read` forever on a stalled client, pinning its thread. A read
    // timeout now reclaims the connection.
    let registry = Arc::new(ModelRegistry::from_snapshot(LoadedModels::default()));
    let service = Arc::new(Service::new(
        registry,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let server =
        Server::bind_with_timeout("127.0.0.1:0", service, Duration::from_millis(200)).unwrap();
    let handle = server.spawn();

    // Stall mid-line; the server must drop us rather than wait forever.
    let mut stalled = TcpStream::connect(handle.addr()).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stalled.write_all(br#"{"op": "health""#).unwrap();
    let mut buf = [0u8; 64];
    let n = stalled
        .read(&mut buf)
        .expect("server should close, not hang");
    assert_eq!(n, 0, "expected EOF from the reclaimed connection");

    // The server still accepts and serves new clients.
    let v = LineClient::connect(handle.addr()).roundtrip(r#"{"op": "health", "id": 1}"#);
    assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");

    handle.shutdown();
}
