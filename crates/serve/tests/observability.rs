//! Request-scoped observability end to end: request IDs, per-stage
//! debug breakdowns, event-log records, rolling latency quantiles,
//! slow-request accounting, and drift-driven health degradation.
//!
//! Tests that flip the process-global trace/event flags serialise on
//! [`LOCK`] and restore the flags before returning. Assertions on
//! recorded spans/events are guarded on `paragraph_obs::enabled()` so
//! the suite also passes when the `trace` feature is compiled out.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use paragraph::{
    fit_norm, normalize_circuits, FitConfig, GnnKind, PreparedCircuit, Target, TargetModel,
};
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;
use paragraph_serve::{DriftConfig, LoadedModels, ModelRegistry, Service, ServiceConfig};
use serde_json::Value;

const NETLIST: &str = "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n";
const NL_ESCAPED: &str = "mp o i vdd vdd pch\\nmn o i vss vss nch\\n.end\\n";

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn train_cap_model(max_v: f64) -> TargetModel {
    let circuit = parse_spice(NETLIST).unwrap().flatten().unwrap();
    let mut train = vec![PreparedCircuit::new(
        "seed",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    let mut fit = FitConfig::quick(GnnKind::Gcn);
    fit.epochs = 2;
    fit.embed_dim = 4;
    fit.layers = 1;
    TargetModel::train(&train, Target::Cap, Some(max_v), fit, &norm).0
}

fn service(config: ServiceConfig) -> Service {
    let snapshot = LoadedModels::from_models([
        ("cap_1f".to_owned(), train_cap_model(1e-15)),
        ("cap_10f".to_owned(), train_cap_model(10e-15)),
    ])
    .unwrap();
    Service::new(Arc::new(ModelRegistry::from_snapshot(snapshot)), config)
}

fn call(service: &Service, line: &str) -> Value {
    serde_json::from_str(&service.handle_line(line)).unwrap()
}

/// A netlist electrically unlike the training circuit: one net fanning
/// out to dozens of gates, oversized devices.
fn ood_netlist() -> String {
    let mut s = String::new();
    for i in 0..40 {
        s.push_str(&format!("mn d{i} g vss vss nch w=50u l=5u nf=8\n"));
    }
    s.push_str(".end\n");
    s.replace('\n', "\\n")
}

#[test]
fn debug_predict_carries_stage_breakdown_and_correlates_with_events() {
    let _g = lock();
    paragraph_obs::set_enabled(true);
    paragraph_obs::set_events_enabled(true);
    let _ = paragraph_obs::take_events();
    let _ = paragraph_obs::take_event_lines();

    let svc = service(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let plain = call(
        &svc,
        &format!(r#"{{"op": "predict", "id": 1, "netlist": "{NL_ESCAPED}"}}"#),
    );
    assert_eq!(plain["ok"].as_bool(), Some(true), "{plain:?}");
    assert!(plain["debug"].is_null(), "no debug unless requested");
    assert!(
        plain.as_object().unwrap().get("_obs").is_none(),
        "internal timing payload must never reach the client"
    );

    let dbg = call(
        &svc,
        &format!(r#"{{"op": "predict", "id": 2, "netlist": "{NL_ESCAPED}", "debug": true}}"#),
    );
    assert_eq!(dbg["ok"].as_bool(), Some(true), "{dbg:?}");
    assert_eq!(
        dbg["result"], plain["result"],
        "debug instrumentation must not perturb the payload"
    );
    let debug = &dbg["debug"];
    let request_id = debug["request_id"].as_str().expect("request id").to_owned();
    assert!(request_id.starts_with("req-"), "{request_id}");
    assert_eq!(debug["span"].as_str(), Some("serve_request"));
    assert_eq!(debug["cache_hit"].as_bool(), Some(true), "{debug:?}");
    let stages = &debug["stages"];
    for stage in ["parse_us", "queue_wait_us", "cache_lookup_us", "total_us"] {
        assert!(
            stages[stage].as_f64().is_some_and(|v| v >= 0.0),
            "missing stage {stage}: {stages:?}"
        );
    }

    // A cold debug request (fresh netlist) exposes the model stages.
    let cold = call(
        &svc,
        r#"{"op": "predict", "id": 3, "netlist": "mp z a vdd vdd pch\nmn z a vss vss nch\n.end\n", "debug": true}"#
            .replace('\n', "\\n")
            .as_str(),
    );
    assert_eq!(cold["ok"].as_bool(), Some(true), "{cold:?}");
    let cold_stages = &cold["debug"]["stages"];
    assert!(
        cold_stages["graph_build_us"].as_f64().is_some(),
        "{cold_stages:?}"
    );
    assert!(
        cold_stages["inference_us"]
            .as_f64()
            .is_some_and(|v| v > 0.0),
        "{cold_stages:?}"
    );
    assert_eq!(cold["debug"]["cache_hit"].as_bool(), Some(false));
    assert_eq!(
        cold["debug"]["model"].as_str(),
        Some("cap_ensemble"),
        "{cold:?}"
    );

    if paragraph_obs::enabled() {
        let lines = paragraph_obs::take_event_lines();
        let record = lines
            .iter()
            .find(|l| l.contains(&format!("\"request_id\":\"{request_id}\"")))
            .unwrap_or_else(|| panic!("no event for {request_id} in {lines:?}"));
        assert!(record.contains("\"kind\":\"request\""));
        assert!(record.contains("\"span\":\"serve_request\""));
        assert!(record.contains("\"stages\":{"));
        assert!(record.contains("\"cache_hit\":true"));

        let spans = paragraph_obs::take_events();
        assert!(
            spans.iter().any(|s| {
                s.name == "serve_request"
                    && s.args
                        .iter()
                        .any(|(k, v)| *k == "request_id" && v == &request_id)
            }),
            "no serve_request span carrying {request_id}"
        );
    }
    paragraph_obs::set_events_enabled(false);
    paragraph_obs::set_enabled(false);
}

#[test]
fn event_sampling_logs_every_nth_ok_and_all_errors() {
    let _g = lock();
    paragraph_obs::set_enabled(true);
    paragraph_obs::set_events_enabled(true);
    let _ = paragraph_obs::take_event_lines();

    let svc = service(ServiceConfig {
        event_sample: 3,
        ..ServiceConfig::default()
    });
    for i in 0..9 {
        let r = call(&svc, &format!(r#"{{"op": "health", "id": {i}}}"#));
        assert_eq!(r["ok"].as_bool(), Some(true));
    }
    // Errors bypass sampling.
    let r = call(
        &svc,
        r#"{"op": "predict", "id": 99, "netlist": "m broken\n.end\n"}"#,
    );
    assert_eq!(r["ok"].as_bool(), Some(false));

    if paragraph_obs::enabled() {
        let lines = paragraph_obs::take_event_lines();
        let requests: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"request\""))
            .collect();
        let ok_count = requests
            .iter()
            .filter(|l| l.contains("\"ok\":true"))
            .count();
        let err_count = requests
            .iter()
            .filter(|l| l.contains("\"ok\":false"))
            .count();
        assert_eq!(ok_count, 3, "every 3rd of 9 ok requests: {requests:?}");
        assert_eq!(err_count, 1, "errors always logged: {requests:?}");
    }
    paragraph_obs::set_events_enabled(false);
    paragraph_obs::set_enabled(false);
}

#[test]
fn slow_requests_are_counted_and_always_logged() {
    let _g = lock();
    paragraph_obs::set_enabled(true);
    paragraph_obs::set_events_enabled(true);
    let _ = paragraph_obs::take_event_lines();

    let svc = service(ServiceConfig {
        // Zero threshold: every request counts as slow.
        slow_threshold: Duration::ZERO,
        event_sample: 1_000_000, // sampling must not suppress slow logs
        ..ServiceConfig::default()
    });
    // First request is sampled (n=0); the next two rely on slow-always.
    for i in 0..3 {
        let r = call(&svc, &format!(r#"{{"op": "health", "id": {i}}}"#));
        assert_eq!(r["ok"].as_bool(), Some(true));
    }
    let metrics = call(&svc, r#"{"op": "metrics", "id": 100}"#);
    let text = metrics["result"]["prometheus"].as_str().unwrap();
    let slow_line = text
        .lines()
        .find(|l| l.starts_with("paragraph_serve_slow_requests_total"))
        .expect("slow counter rendered");
    let n: u64 = slow_line.rsplit(' ').next().unwrap().parse().unwrap();
    // 3 health + the metrics request itself may already be counted.
    assert!(n >= 3, "slow requests counted: {slow_line}");

    if paragraph_obs::enabled() {
        let lines = paragraph_obs::take_event_lines();
        let slow = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"slow_request\""))
            .count();
        assert!(slow >= 3, "slow events: {lines:?}");
        let logged = lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"request\"") && l.contains("\"slow\":true"))
            .count();
        assert!(logged >= 3, "slow requests bypass sampling: {lines:?}");
    }
    paragraph_obs::set_events_enabled(false);
    paragraph_obs::set_enabled(false);
}

#[test]
fn rolling_latency_quantiles_reach_the_metrics_endpoint() {
    let svc = service(ServiceConfig::default());
    for i in 0..20 {
        call(&svc, &format!(r#"{{"op": "health", "id": {i}}}"#));
    }
    let r = call(&svc, r#"{"op": "metrics", "id": 21}"#);
    let text = r["result"]["prometheus"].as_str().unwrap();
    for q in ["0.5", "0.95", "0.99"] {
        let needle =
            format!("paragraph_request_latency_rolling_us{{op=\"health\",quantile=\"{q}\"}}");
        let line = text
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("missing {needle} in:\n{text}"));
        let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(v.is_finite() && v > 0.0, "{line}");
    }
    let snap = &r["result"]["metrics"]["endpoints"];
    let health = snap
        .as_array()
        .unwrap()
        .iter()
        .find(|e| e["op"].as_str() == Some("health"))
        .unwrap();
    assert!(health["latency_rolling"][0]["latency_us"].as_f64().unwrap() > 0.0);
}

#[test]
fn ood_traffic_degrades_health_and_in_distribution_stays_green() {
    let svc = service(ServiceConfig {
        drift: DriftConfig {
            min_requests: 4,
            degraded_fraction: 0.5,
            ..DriftConfig::default()
        },
        ..ServiceConfig::default()
    });

    // In-distribution traffic: the training netlist itself.
    for i in 0..4 {
        let r = call(
            &svc,
            &format!(r#"{{"op": "predict", "id": {i}, "netlist": "{NL_ESCAPED}"}}"#),
        );
        assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
    }
    let health = call(&svc, r#"{"op": "health", "id": 50}"#);
    assert_eq!(
        health["result"]["status"].as_str(),
        Some("ok"),
        "{health:?}"
    );
    assert_eq!(
        health["result"]["drift"]["active"].as_bool(),
        Some(true),
        "baseline stats from the artifact must arm the monitor: {health:?}"
    );
    assert_eq!(
        health["result"]["drift"]["ood_requests_total"].as_u64(),
        Some(0),
        "{health:?}"
    );

    // Now a burst of circuits far outside the training distribution.
    let bad = ood_netlist();
    for i in 0..12 {
        let r = call(
            &svc,
            &format!(
                r#"{{"op": "predict", "id": {}, "netlist": "{bad}"}}"#,
                100 + i
            ),
        );
        assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
    }
    let health = call(&svc, r#"{"op": "health", "id": 51}"#);
    assert_eq!(
        health["result"]["status"].as_str(),
        Some("degraded"),
        "{health:?}"
    );
    let ood = health["result"]["drift"]["ood_requests_total"]
        .as_u64()
        .unwrap();
    assert!(ood >= 12, "ood requests counted: {health:?}");
    let reasons = health["result"]["degraded_reasons"].as_array().unwrap();
    assert!(
        reasons
            .iter()
            .any(|r| r.as_str().unwrap().contains("out-of-distribution")),
        "{reasons:?}"
    );

    // Drift gauges are exported per feature.
    let metrics = call(&svc, r#"{"op": "metrics", "id": 52}"#);
    let text = metrics["result"]["prometheus"].as_str().unwrap();
    assert!(
        text.contains("paragraph_serve_drift_z{"),
        "missing drift gauges in:\n{text}"
    );
    assert!(text.contains("paragraph_serve_ood_requests_total"));
}

#[test]
fn health_reports_per_model_readiness() {
    let svc = service(ServiceConfig::default());
    let health = call(&svc, r#"{"op": "health", "id": 1}"#);
    let registry = health["result"]["model_registry"].as_array().unwrap();
    assert_eq!(registry.len(), 2, "{registry:?}");
    for entry in registry {
        assert!(entry["name"].as_str().is_some());
        assert_eq!(entry["target"].as_str(), Some("CAP"));
        assert!(entry["param_count"].as_u64().unwrap() > 0);
        assert!(entry["max_value"].as_f64().unwrap() > 0.0);
        assert_eq!(entry["baseline_stats"].as_bool(), Some(true));
    }
    let ranges = health["result"]["ensemble_ranges"].as_array().unwrap();
    assert_eq!(ranges.len(), 2);
    // Members are ordered ascending max_value, each with its label range.
    assert!(ranges[0]["max_value"].as_f64().unwrap() < ranges[1]["max_value"].as_f64().unwrap());
    for r in ranges {
        assert!(r["label_max"].as_f64().is_some(), "{r:?}");
        assert_eq!(r["baseline_stats"].as_bool(), Some(true));
    }
}
