//! Batched predict parity: a service draining several queued predict
//! jobs into one block-diagonal forward pass must answer every request
//! with exactly the payload an unbatched service produces.

use std::sync::Arc;

use paragraph::{
    fit_norm, normalize_circuits, FitConfig, GnnKind, Precision, PreparedCircuit, Target,
    TargetModel,
};
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;
use paragraph_serve::{LoadedModels, ModelRegistry, Service, ServiceConfig};
use serde_json::{json, Value};

const NETLISTS: [&str; 4] = [
    "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n",
    "mp z a vdd vdd pch nf=2\nmn z a vss vss nch\nc1 z vss 1f\n.end\n",
    "mn1 d g s vss nch nfin=4\nr1 d o 2k\n.end\n",
    "mp1 q b vdd vdd pch\nmn1 q b vss vss nch\nmp2 w q vdd vdd pch\nmn2 w q vss vss nch\n.end\n",
];

fn service(max_batch: usize) -> Arc<Service> {
    let circuit = parse_spice(NETLISTS[0]).unwrap().flatten().unwrap();
    let mut train = vec![PreparedCircuit::new(
        "seed",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    let members: Vec<(String, TargetModel)> = [("cap_1f", 1e-15), ("cap_10f", 10e-15)]
        .iter()
        .map(|(name, max_v)| {
            let mut fit = FitConfig::quick(GnnKind::Gcn);
            fit.epochs = 2;
            fit.embed_dim = 4;
            fit.layers = 1;
            let mut model = TargetModel::train(&train, Target::Cap, Some(*max_v), fit, &norm).0;
            // Bitwise batched-vs-unbatched parity is an f32 contract:
            // int8 sites the calibration graphs never exercised fall
            // back to dynamic max-abs scales over the live activation
            // buffer, which is batch-dependent. Pin f32 so a
            // process-wide PARAGRAPH_PRECISION override (the quantized
            // CI job) cannot reroute this test.
            model.precision = Some(Precision::F32);
            (name.to_string(), model)
        })
        .collect();
    let snapshot = LoadedModels::from_models(members).unwrap();
    let registry = Arc::new(ModelRegistry::from_snapshot(snapshot));
    let config = ServiceConfig {
        // One worker so co-queued jobs actually drain as one batch;
        // caching off so every request takes the compute path.
        workers: 1,
        cache_capacity: 0,
        max_batch,
        ..ServiceConfig::default()
    };
    Arc::new(Service::new(registry, config))
}

fn predict_line(id: usize, netlist: &str) -> String {
    serde_json::to_string(&json!({"op": "predict", "id": id, "netlist": netlist})).unwrap()
}

#[test]
fn batched_service_matches_unbatched() {
    let unbatched = service(1);
    let batched = service(4);

    // Reference payloads from the unbatched service.
    let reference: Vec<Value> = NETLISTS
        .iter()
        .enumerate()
        .map(|(i, nl)| {
            let r: Value =
                serde_json::from_str(&unbatched.handle_line(&predict_line(i, nl))).unwrap();
            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
            r["result"].clone()
        })
        .collect();

    // Fire all four at the batched single-worker service concurrently —
    // jobs queue while the worker is busy and drain as one batch — and
    // repeat a few rounds to cover different interleavings.
    for round in 0..4 {
        let threads: Vec<_> = NETLISTS
            .iter()
            .enumerate()
            .map(|(i, nl)| {
                let svc = batched.clone();
                let line = predict_line(round * 10 + i, nl);
                std::thread::spawn(move || {
                    let r: Value = serde_json::from_str(&svc.handle_line(&line)).unwrap();
                    (i, r)
                })
            })
            .collect();
        for t in threads {
            let (i, r) = t.join().unwrap();
            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
            assert_eq!(
                r["result"], reference[i],
                "batched response {i} drifted from unbatched"
            );
        }
    }
}
