//! End-to-end test: spawn the TCP server on an ephemeral port, hammer it
//! with concurrent clients mixing valid, malformed, and past-deadline
//! requests, and assert that served predictions are bit-identical to
//! direct in-process model predictions on both cache paths.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use paragraph::{
    fit_norm, normalize_circuits, CapEnsemble, FitConfig, GnnKind, PreparedCircuit, SavedModel,
    Target, TargetModel,
};
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;
use paragraph_serve::{ModelRegistry, Server, ServerHandle, Service, ServiceConfig, ENSEMBLE_KEY};
use serde_json::Value;

const NETLIST_A: &str = "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n";
const NETLIST_B: &str = "mp z a vdd vdd pch nf=2\nmn z a vss vss nch\nc1 z vss 1f\n.end\n";
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 24;

fn train_cap_model(max_v: f64) -> TargetModel {
    let circuit = parse_spice(NETLIST_A).unwrap().flatten().unwrap();
    let mut train = vec![PreparedCircuit::new(
        "seed",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    let mut fit = FitConfig::quick(GnnKind::Gcn);
    fit.epochs = 2;
    fit.embed_dim = 4;
    fit.layers = 1;
    TargetModel::train(&train, Target::Cap, Some(max_v), fit, &norm).0
}

/// Trains two range members, snapshots them into a fresh model dir, and
/// returns the dir plus the reference ensemble reloaded from those very
/// files (so the reference went through the same JSON round trip the
/// server's registry does).
fn build_model_dir() -> (PathBuf, CapEnsemble) {
    let dir = std::env::temp_dir().join(format!(
        "paragraph-serve-it-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut reloaded = Vec::new();
    for (name, max_v) in [("cap_1f", 1e-15), ("cap_10f", 10e-15)] {
        let model = train_cap_model(max_v);
        let json = SavedModel::from_model(&model).to_json();
        std::fs::write(dir.join(format!("{name}.json")), &json).unwrap();
        reloaded.push(SavedModel::from_json(&json).unwrap().into_model().unwrap());
    }
    let ensemble = CapEnsemble::try_new(reloaded).unwrap();
    (dir, ensemble)
}

fn start_server(dir: &Path) -> (Arc<Service>, ServerHandle) {
    let registry = Arc::new(ModelRegistry::open(dir).unwrap());
    let config = ServiceConfig {
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 64,
        enable_debug_ops: true,
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(registry, config));
    let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
    (service, server.spawn())
}

/// Expected `{"net": ..., "value": ...}` pairs for `netlist`, computed
/// directly (no server, no cache).
fn direct_reference(ensemble: &CapEnsemble, netlist: &str) -> Vec<(String, f64)> {
    let circuit = parse_spice(netlist).unwrap().flatten().unwrap();
    let preds = ensemble.predict_circuit(&circuit);
    circuit
        .nets()
        .iter()
        .zip(&preds)
        .filter_map(|(n, p)| p.map(|v| (n.name.clone(), v)))
        .collect()
}

fn response_predictions(response: &Value) -> Vec<(String, f64)> {
    response["result"]["predictions"]
        .as_array()
        .expect("predictions array")
        .iter()
        .map(|e| {
            (
                e["net"].as_str().expect("net name").to_owned(),
                e["value"].as_f64().expect("numeric value"),
            )
        })
        .collect()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self {
            writer: stream,
            reader,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read");
        assert!(n > 0, "server dropped the connection after: {line}");
        serde_json::from_str(&response).expect("response is JSON")
    }
}

#[test]
fn concurrent_clients_mixed_traffic() {
    let (dir, ensemble) = build_model_dir();
    let (service, handle) = start_server(&dir);
    let addr = handle.addr();
    let expected_a = Arc::new(direct_reference(&ensemble, NETLIST_A));
    let expected_b = Arc::new(direct_reference(&ensemble, NETLIST_B));
    assert!(
        expected_a.iter().any(|(_, v)| *v > 0.0),
        "reference predictions must be non-trivial"
    );

    // Warm the cache once so later identical requests can hit it, and
    // check the cached-path payload is bit-identical to the cold one.
    {
        let mut c = Client::connect(addr);
        let cold = c.roundtrip(&predict_line(9_000, NETLIST_A, None));
        assert_eq!(cold["ok"].as_bool(), Some(true), "{cold:?}");
        assert_eq!(cold["cached"].as_bool(), Some(false));
        let warm = c.roundtrip(&predict_line(9_001, NETLIST_A, None));
        assert_eq!(warm["cached"].as_bool(), Some(true));
        assert_eq!(
            cold["result"], warm["result"],
            "cache must serve identical payloads"
        );
        assert_eq!(response_predictions(&cold), *expected_a);
    }

    let threads: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let expected_a = expected_a.clone();
            let expected_b = expected_b.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut predictions_checked = 0_usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    let id = (client_id * 1000 + i) as u64;
                    match i % 8 {
                        0 | 1 => {
                            let (netlist, expected) = if i % 16 < 8 {
                                (NETLIST_A, &expected_a)
                            } else {
                                (NETLIST_B, &expected_b)
                            };
                            let r = client.roundtrip(&predict_line(id, netlist, None));
                            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
                            assert_eq!(r["id"].as_u64(), Some(id));
                            assert_eq!(
                                response_predictions(&r),
                                **expected,
                                "served prediction differs from direct predict"
                            );
                            predictions_checked += 1;
                        }
                        2 => {
                            // Malformed JSON: structured error, connection stays up.
                            let r = client.roundtrip("this is not json {{{");
                            assert_eq!(r["ok"].as_bool(), Some(false));
                            assert_eq!(r["error"]["code"].as_str(), Some("bad_request"));
                        }
                        3 => {
                            // Unknown op.
                            let r = client.roundtrip(&format!(
                                r#"{{"op": "frobnicate", "id": {id}}}"#
                            ));
                            assert_eq!(r["error"]["code"].as_str(), Some("bad_request"));
                            assert_eq!(r["id"].as_u64(), Some(id), "id salvaged on errors");
                        }
                        4 => {
                            // Past-deadline request.
                            let r = client.roundtrip(&format!(
                                r#"{{"op": "predict", "id": {id}, "netlist": "{NL_A_ESCAPED}", "deadline_ms": 0}}"#
                            ));
                            assert_eq!(r["ok"].as_bool(), Some(false));
                            assert_eq!(
                                r["error"]["code"].as_str(),
                                Some("deadline_exceeded"),
                                "{r:?}"
                            );
                        }
                        5 => {
                            // Unparseable netlist.
                            let r = client.roundtrip(&format!(
                                r#"{{"op": "predict", "id": {id}, "netlist": "m broken\n.end\n"}}"#
                            ));
                            assert_eq!(r["ok"].as_bool(), Some(false));
                            assert_eq!(r["error"]["code"].as_str(), Some("invalid_netlist"));
                        }
                        6 => {
                            let r = client.roundtrip(&format!(
                                r#"{{"op": "stats", "id": {id}, "netlist": "{NL_A_ESCAPED}"}}"#
                            ));
                            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
                            assert!(r["result"]["devices"].as_u64().unwrap() >= 2);
                        }
                        _ => {
                            let r = client.roundtrip(&format!(r#"{{"op": "health", "id": {id}}}"#));
                            assert_eq!(r["ok"].as_bool(), Some(true));
                            let models = r["result"]["models"].as_array().unwrap();
                            assert!(models
                                .iter()
                                .any(|m| m.as_str() == Some(ENSEMBLE_KEY)));
                        }
                    }
                }
                predictions_checked
            })
        })
        .collect();

    let total_checked: usize = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .sum();
    assert!(
        total_checked >= CLIENTS * 4,
        "predictions exercised: {total_checked}"
    );

    // Panic isolation: a worker panic returns a structured internal
    // error, and the pool keeps serving afterwards.
    {
        let mut c = Client::connect(addr);
        let r = c.roundtrip(r#"{"op": "debug_panic", "id": 7777}"#);
        assert_eq!(r["ok"].as_bool(), Some(false));
        assert_eq!(r["error"]["code"].as_str(), Some("internal"));
        assert!(r["error"]["message"].as_str().unwrap().contains("panicked"));
        let after = c.roundtrip(&predict_line(7_778, NETLIST_B, None));
        assert_eq!(
            after["ok"].as_bool(),
            Some(true),
            "pool died after a panic: {after:?}"
        );
        assert_eq!(response_predictions(&after), *expected_b);
    }

    // Metrics: counts, histogram buckets, queue depth, cache hit rate.
    {
        let mut c = Client::connect(addr);
        let r = c.roundtrip(r#"{"op": "metrics", "id": 8888}"#);
        assert_eq!(r["ok"].as_bool(), Some(true));
        let m = &r["result"]["metrics"];
        let endpoints = m["endpoints"].as_array().unwrap();
        let predict = endpoints
            .iter()
            .find(|e| e["op"].as_str() == Some("predict"))
            .expect("predict endpoint");
        let requests = predict["requests"].as_u64().unwrap();
        assert!(
            requests >= (CLIENTS * 4) as u64,
            "predict requests: {requests}"
        );
        let bucket_sum: u64 = predict["latency_buckets"]
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b["count"].as_u64().unwrap())
            .sum();
        assert_eq!(bucket_sum, requests, "histogram must cover every request");
        assert!(
            predict["errors"].as_u64().unwrap() >= 1,
            "deadline errors recorded"
        );
        assert!(m["queue_depth"].as_u64().is_some() || m["queue_depth"].as_f64().is_some());
        assert!(m["bad_lines"].as_u64().unwrap() >= CLIENTS as u64);
        let cache = &m["cache"];
        assert!(
            cache["hits"].as_u64().unwrap() > 0,
            "repeated identical requests must hit"
        );
        assert!(cache["hit_rate"].as_f64().unwrap() > 0.0);
        assert!(r["result"]["prometheus"]
            .as_str()
            .unwrap()
            .contains("paragraph_requests_total"));
    }

    // In-process API serves the same bit-identical payloads as TCP.
    {
        let line = predict_line(12_345, NETLIST_A, None);
        let response: Value = serde_json::from_str(&service.handle_line(&line)).unwrap();
        assert_eq!(response["ok"].as_bool(), Some(true));
        assert_eq!(response_predictions(&response), *expected_a);
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_reload_swaps_registry() {
    let (dir, _ensemble) = build_model_dir();
    let (service, handle) = start_server(&dir);
    let mut c = Client::connect(handle.addr());

    let r = c.roundtrip(r#"{"op": "reload", "id": 1}"#);
    assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
    assert_eq!(r["result"]["models"].as_u64(), Some(2));
    assert_eq!(r["result"]["ensemble"].as_bool(), Some(true));

    // Add a third range member on disk; reload must pick it up.
    let model = train_cap_model(100e-15);
    std::fs::write(
        dir.join("cap_100f.json"),
        SavedModel::from_model(&model).to_json(),
    )
    .unwrap();
    let r = c.roundtrip(r#"{"op": "reload", "id": 2}"#);
    assert_eq!(r["result"]["models"].as_u64(), Some(3), "{r:?}");

    // A corrupt snapshot must fail the reload and keep the old registry.
    std::fs::write(dir.join("broken.json"), "{not a model").unwrap();
    let r = c.roundtrip(r#"{"op": "reload", "id": 3}"#);
    assert_eq!(r["ok"].as_bool(), Some(false));
    assert_eq!(r["error"]["code"].as_str(), Some("internal"));
    assert_eq!(
        service.registry().current().models.len(),
        3,
        "old snapshot retained"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `NETLIST_A` with `\n` escaped for embedding in JSON string literals.
const NL_A_ESCAPED: &str = "mp o i vdd vdd pch\\nmn o i vss vss nch\\n.end\\n";

fn predict_line(id: u64, netlist: &str, model: Option<&str>) -> String {
    let escaped = netlist.replace('\n', "\\n");
    match model {
        Some(m) => {
            format!(r#"{{"op": "predict", "id": {id}, "model": "{m}", "netlist": "{escaped}"}}"#)
        }
        None => format!(r#"{{"op": "predict", "id": {id}, "netlist": "{escaped}"}}"#),
    }
}
