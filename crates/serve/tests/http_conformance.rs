//! HTTP/1.1 protocol conformance for the sharded gateway: routing,
//! keep-alive and Content-Length framing, header case-insensitivity,
//! malformed-request status codes, load shedding (`503` +
//! `Retry-After`), pipelining, and first-byte protocol sniffing parity
//! with the legacy JSON-lines server.

mod common;

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use common::{
    build_model_dir, direct_reference, predict_line, response_predictions, start_gateway,
    test_service_config, HttpClient, LineClient, NETLIST_A, NETLIST_B,
};
use paragraph_serve::{
    GatewayConfig, ModelRegistry, Server, Service, ServiceConfig, Submitted, ENSEMBLE_KEY,
};
use serde_json::{json, Value};

fn predict_body(id: u64, netlist: &str) -> String {
    serde_json::to_string(&json!({"id": id, "netlist": netlist})).unwrap()
}

#[test]
fn routes_and_keepalive_predict_match_direct_reference() {
    let (dir, ensemble) = build_model_dir("routes");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    let expected_a = direct_reference(&ensemble, NETLIST_A);
    assert!(expected_a.iter().any(|(_, v)| *v > 0.0));

    // Everything below flows over ONE keep-alive connection; each
    // successful framed response proves the previous one didn't close
    // or misframe the stream.
    let mut c = HttpClient::connect(handle.addr());

    let health = c.get("/health");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("content-type"), Some("application/json"));
    let health = health.json();
    assert_eq!(health["status"].as_str(), Some("ok"), "{health:?}");

    // `op` is implied on POST /predict; payload must be bit-identical
    // to the line protocol's and match the direct in-process reference.
    let cold = c.post_json("/predict", &predict_body(1, NETLIST_A));
    assert_eq!(cold.status, 200);
    let cold = cold.json();
    assert_eq!(cold["ok"].as_bool(), Some(true), "{cold:?}");
    assert_eq!(cold["id"].as_u64(), Some(1));
    assert_eq!(cold["cached"].as_bool(), Some(false));
    assert_eq!(response_predictions(&cold), expected_a);

    let warm = c.post_json("/predict", &predict_body(2, NETLIST_A)).json();
    assert_eq!(warm["cached"].as_bool(), Some(true));
    assert_eq!(
        cold["result"], warm["result"],
        "cache must serve identical payloads"
    );

    // An explicit `"op": "predict"` is accepted; any other op is not.
    let explicit = c.post_json("/predict", &predict_line(3, NETLIST_B, None));
    assert_eq!(explicit.status, 200);
    let wrong_op = c.post_json("/predict", r#"{"op": "health", "id": 4}"#);
    assert_eq!(wrong_op.status, 400);

    let metrics = c.get("/metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(metrics.body.clone()).unwrap();
    assert!(text.contains("shard=\"0\""), "per-shard labels expected");
    assert!(text.contains("shard=\"1\""), "per-shard labels expected");

    let snapshot = c.get("/metrics.json").json();
    assert_eq!(snapshot["shard_count"].as_u64(), Some(2));
    assert!(snapshot["totals"]["requests"].as_u64().unwrap() >= 4);

    let registry = c.get("/registry").json();
    let models: Vec<&str> = registry["models"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert!(models.contains(&"cap_1f"), "{registry:?}");
    assert!(models.contains(&ENSEMBLE_KEY), "{registry:?}");
    assert_eq!(registry["ensemble"].as_bool(), Some(true));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn headers_are_case_insensitive_and_connection_close_honoured() {
    let (dir, _ensemble) = build_model_dir("caseins");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    // Shouted header names and a shouted `Connection: CLOSE` value must
    // both be recognised.
    let mut c = HttpClient::connect(handle.addr());
    let body = predict_body(1, NETLIST_A);
    let r = c.request_raw(
        format!(
            "POST /predict HTTP/1.1\r\nhOsT: t\r\ncOnTeNt-LeNgTh: {}\r\nCONNECTION: CLOSE\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));
    c.assert_closed();

    // HTTP/1.0 defaults to close; `Connection: keep-alive` overrides.
    let mut c = HttpClient::connect(handle.addr());
    let r = c.request_raw(b"GET /health HTTP/1.0\r\n\r\n");
    assert_eq!(r.status, 200);
    c.assert_closed();

    let mut c = HttpClient::connect(handle.addr());
    let r = c.request_raw(b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    assert_eq!(r.status, 200);
    let again = c.get("/health");
    assert_eq!(again.status, 200, "keep-alive 1.0 connection must persist");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_parser_level_statuses() {
    let (dir, _ensemble) = build_model_dir("malformed");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    // (raw request, expected status); each closes the connection.
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET /health\r\n\r\n".to_vec(), 400),
        (b"GET /health HTTP/2.0\r\n\r\n".to_vec(), 505),
        (
            b"GET /health HTTP/1.1\r\nno colon here\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
    ];
    for (raw, expected) in cases {
        let mut c = HttpClient::connect(handle.addr());
        let r = c.request_raw(&raw);
        assert_eq!(
            r.status,
            expected,
            "request {:?}",
            String::from_utf8_lossy(&raw)
        );
        assert_eq!(r.header("connection"), Some("close"));
        c.assert_closed();
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_method_is_405_unknown_route_404_unknown_model_404() {
    let (dir, _ensemble) = build_model_dir("methods");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    let mut c = HttpClient::connect(handle.addr());

    // 405s advertise the allowed method and keep the connection alive.
    let r = c.request_raw(b"DELETE /health HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET"));
    let r = c.get("/predict");
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));

    let r = c.get("/no/such/route");
    assert_eq!(r.status, 404);

    // Envelope-level errors map onto statuses: unknown model is 404.
    let r = c.post_json(
        "/predict",
        &serde_json::to_string(&json!({"id": 1, "model": "nope", "netlist": NETLIST_A})).unwrap(),
    );
    assert_eq!(r.status, 404);
    assert_eq!(r.json()["error"]["code"].as_str(), Some("unknown_model"));

    // Invalid netlist is 400 through the same mapping.
    let r = c.post_json(
        "/predict",
        &serde_json::to_string(&json!({"id": 2, "netlist": "not spice at all"})).unwrap(),
    );
    assert_eq!(r.status, 400);
    assert_eq!(r.json()["error"]["code"].as_str(), Some("invalid_netlist"));

    // The connection survived every error above.
    assert_eq!(c.get("/health").status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A linear chain of `devices` transistors: parses fine, but is big
/// enough that one prediction occupies a worker for a while, holding
/// the shedding window open. `tag` keeps instance names (and the cache
/// key) unique per call.
fn chain_netlist(tag: usize, devices: usize) -> String {
    let mut s = String::new();
    for i in 0..devices {
        let j = i + 1;
        s.push_str(&format!("mq{tag}x{i} n{i} n{j} vss vss nch\n"));
    }
    s.push_str(".end\n");
    s
}

#[test]
fn load_shedding_yields_503_with_retry_after_and_structured_overloaded() {
    let (dir, _ensemble) = build_model_dir("shed");
    // One shard, one worker, queue of one, no batching, no cache: two
    // slow jobs saturate the shard completely.
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 1,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    let service: Arc<Service> = handle.services()[0].clone();

    // Fill the shard through the service API until it sheds: at that
    // point the worker is grinding a slow job and the queue is full.
    let mut pending = Vec::new();
    let mut shed_directly = false;
    for k in 0..10 {
        let line = predict_line(100 + k, &chain_netlist(k as usize, 2_000), None);
        match service.submit_line(&line) {
            Submitted::Pending(call) => pending.push(call),
            Submitted::Done(envelope) => {
                assert_eq!(
                    envelope["error"]["code"].as_str(),
                    Some("overloaded"),
                    "{envelope:?}"
                );
                shed_directly = true;
                break;
            }
        }
        // Give the worker a moment to pull the head job off the queue.
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(shed_directly, "service never shed under a full queue");

    // An HTTP predict arriving now is shed with 503 + Retry-After...
    let mut http = HttpClient::connect(handle.addr());
    let r = http.post_json("/predict", &predict_body(1, NETLIST_A));
    assert_eq!(r.status, 503, "{:?}", r.json());
    assert_eq!(r.header("retry-after"), Some("1"));
    assert_eq!(r.json()["error"]["code"].as_str(), Some("overloaded"));

    // ...and a JSON-lines client on the SAME port gets the structured
    // `overloaded` error, not a dropped connection.
    let mut line_client = LineClient::connect(handle.addr());
    let v = line_client.roundtrip(&predict_line(2, NETLIST_A, None));
    assert_eq!(v["ok"].as_bool(), Some(false));
    assert_eq!(v["error"]["code"].as_str(), Some("overloaded"));

    // Drain the slow jobs so shutdown is orderly.
    for call in pending {
        let _ = service.wait(call);
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_lines_over_gateway_is_byte_identical_to_legacy_server() {
    let (dir, _ensemble) = build_model_dir("parity");
    let config = test_service_config();
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let legacy_service = Arc::new(Service::new(registry, config.clone()));
    let legacy = Server::bind("127.0.0.1:0", legacy_service).unwrap().spawn();
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: config,
            ..GatewayConfig::default()
        },
    );

    let mut old = LineClient::connect(legacy.addr());
    let mut new = LineClient::connect(handle.addr());

    // Cold predict, warm (cached) predict, malformed JSON, unknown
    // model: every raw response line must match byte for byte.
    let requests = [
        predict_line(1, NETLIST_A, None),
        predict_line(2, NETLIST_A, None),
        "{malformed json".to_owned(),
        predict_line(3, NETLIST_B, Some("missing_model")),
        r#"{"op": "stats", "id": 4}"#.to_owned(),
    ];
    for request in &requests {
        old.send(request);
        new.send(request);
        let old_line = old.recv_raw();
        let new_line = new.recv_raw();
        // `stats` contains live latency numbers; compare ids only.
        if request.contains("stats") {
            let old_v: Value = serde_json::from_str(&old_line).unwrap();
            let new_v: Value = serde_json::from_str(&new_line).unwrap();
            assert_eq!(old_v["id"], new_v["id"]);
            assert_eq!(old_v["ok"], new_v["ok"]);
        } else {
            assert_eq!(old_line, new_line, "gateway diverged on: {request}");
        }
    }

    legacy.shutdown();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_http_requests_are_answered_in_order() {
    let (dir, _ensemble) = build_model_dir("pipeline");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    let mut c = HttpClient::connect(handle.addr());
    let mut burst = Vec::new();
    for id in 1..=5_u64 {
        let body = predict_body(id, NETLIST_A);
        burst.extend_from_slice(
            format!(
                "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    c.stream.write_all(&burst).expect("write burst");
    for id in 1..=5_u64 {
        let r = c
            .read_response()
            .expect("response for each pipelined request");
        assert_eq!(r.status, 200);
        assert_eq!(r.json()["id"].as_u64(), Some(id), "responses out of order");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serialises tests that flip the process-wide trace store on: the
/// store is a singleton, so concurrent enable/reset calls from parallel
/// tests would corrupt each other's counters.
static STORE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The `/debug` surface basics: content types, 405 on wrong methods,
/// 404 (as JSON) for unknown request ids, and `/metrics.json`
/// aggregation totals equal to the per-shard sums the same payload
/// reports.
#[test]
fn debug_surface_content_types_unknown_id_and_aggregation() {
    let _guard = STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _ensemble) = build_model_dir("debugsurface");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    paragraph_obs::set_store_enabled(true);
    let store = paragraph_obs::trace_store();
    store.reset();
    store.set_keep_one_in(1); // keep everything: the index must fill

    // Traffic across both shards: connections round-robin per accept.
    for id in 1..=4_u64 {
        let mut c = HttpClient::connect(handle.addr());
        let r = c.post_json("/predict", &predict_body(id, NETLIST_A));
        assert_eq!(r.status, 200, "{:?}", r.json());
    }

    let mut c = HttpClient::connect(handle.addr());

    // Index: JSON content type, counters, and retained entries.
    let r = c.get("/debug/traces");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("application/json"));
    let index = r.json();
    assert_eq!(index["enabled"].as_bool(), Some(true));
    assert!(index["epoch_unix_ns"].as_u64().is_some());
    let completed = index["counters"]["completed"].as_u64().expect("completed");
    assert!(completed >= 4, "4 predicts completed, saw {completed}");
    let retained = index["counters"]["retained"].as_u64().expect("retained");
    let not_retained = index["counters"]["not_retained"]
        .as_u64()
        .expect("not_retained");
    assert_eq!(
        retained + not_retained,
        completed,
        "retention counters must partition completed requests"
    );
    let traces = index["traces"].as_array().expect("traces array");
    assert!(!traces.is_empty(), "keep-everything sampling retained none");
    for t in traces {
        assert!(t["request_id"].as_str().is_some(), "{t:?}");
        assert!(t["reason"].as_str().is_some(), "{t:?}");
        assert!(t["total_us"].as_f64().is_some(), "{t:?}");
    }
    // Every retained predict carries its owning shard label.
    let shards: std::collections::BTreeSet<u64> = traces
        .iter()
        .filter(|t| t["op"].as_str() == Some("predict"))
        .filter_map(|t| t["shard"].as_u64())
        .collect();
    assert!(
        !shards.is_empty(),
        "predict traces must carry shard labels: {traces:?}"
    );

    // Detail for a real id round-trips; an unknown id is JSON 404.
    let known = traces[0]["request_id"].as_str().unwrap().to_owned();
    let r = c.get(&format!("/debug/traces/{known}"));
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("application/json"));
    let detail = r.json();
    assert_eq!(detail["request_id"].as_str(), Some(known.as_str()));
    assert!(detail["traceEvents"].as_array().is_some(), "{detail:?}");
    let r = c.get("/debug/traces/req-does-not-exist");
    assert_eq!(r.status, 404);
    assert_eq!(r.header("content-type"), Some("application/json"));
    assert_eq!(r.json()["error"]["code"].as_str(), Some("not_found"));

    // Dashboard: self-contained HTML.
    let r = c.get("/debug/dashboard");
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("text/html; charset=utf-8"));
    let page = String::from_utf8(r.body.clone()).expect("dashboard is UTF-8");
    assert!(page.contains("<html"), "not an HTML page");
    assert!(page.contains("request latency"), "latency section missing");
    assert!(page.contains("retained traces"), "trace section missing");
    assert!(!page.contains("<script"), "dashboard must not need scripts");

    // Wrong methods get 405 + Allow, like the other GET routes.
    for path in ["/debug/traces", "/debug/dashboard", "/debug/traces/req-1"] {
        let r = c.post_json(path, "{}");
        assert_eq!(r.status, 405, "{path}");
        assert_eq!(r.header("allow"), Some("GET"), "{path}");
    }

    // Aggregation: the totals block equals the per-shard sums of the
    // same snapshot payload.
    let snapshot = c.get("/metrics.json").json();
    let shards = snapshot["shards"].as_array().expect("shards array");
    assert_eq!(snapshot["shard_count"].as_u64(), Some(2));
    let per_shard_requests: u64 = shards
        .iter()
        .flat_map(|s| s["endpoints"].as_array().expect("endpoints").iter())
        .filter_map(|e| e["requests"].as_u64())
        .sum();
    assert_eq!(
        snapshot["totals"]["requests"].as_u64(),
        Some(per_shard_requests),
        "aggregate totals must equal the per-shard sum"
    );
    let per_shard_queue: i64 = shards
        .iter()
        .filter_map(|s| s["queue_depth"].as_f64())
        .sum::<f64>() as i64;
    assert_eq!(
        snapshot["totals"]["queue_depth"].as_f64().map(|v| v as i64),
        Some(per_shard_queue)
    );

    paragraph_obs::set_store_enabled(false);
    store.reset();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance path for tail sampling: a genuinely slow request
/// (long transistor chain against a millisecond slow threshold) is
/// retained with reason `slow`, and `/debug/traces/<req-id>` serves its
/// full parse → queue → inference span tree. The retained payload is
/// also written to `target/retained_traces.json` for CI to upload.
#[test]
fn slow_request_is_retained_with_full_span_tree() {
    let _guard = STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _ensemble) = build_model_dir("debugslow");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: ServiceConfig {
                workers: 1,
                cache_capacity: 0,
                slow_threshold: Duration::from_millis(1),
                ..test_service_config()
            },
            ..GatewayConfig::default()
        },
    );
    paragraph_obs::set_store_enabled(true);
    let store = paragraph_obs::trace_store();
    store.reset();
    store.set_keep_one_in(0); // remarkable requests only
    store.set_slow_threshold_us(f64::MAX); // the service's flag decides

    // A 3000-device chain takes far longer than the 1 ms slow
    // threshold; debug mode echoes the internal request id back.
    let mut c = HttpClient::connect(handle.addr());
    let netlist = chain_netlist(77, 3_000).replace('\n', "\\n");
    let body = format!(r#"{{"id": 900, "netlist": "{netlist}", "debug": true}}"#);
    let r = c.post_json("/predict", &body);
    assert_eq!(r.status, 200, "{:?}", r.json());
    let response = r.json();
    let request_id = response["debug"]["request_id"]
        .as_str()
        .expect("debug responses carry the internal request id")
        .to_owned();
    assert_eq!(
        response["debug"]["slow"].as_bool(),
        Some(true),
        "{response:?}"
    );

    // The index lists it with reason slow and its shard.
    let index = c.get("/debug/traces").json();
    let entry = index["traces"]
        .as_array()
        .expect("traces")
        .iter()
        .find(|t| t["request_id"].as_str() == Some(request_id.as_str()))
        .unwrap_or_else(|| panic!("slow request {request_id} not retained: {index:?}"))
        .clone();
    assert_eq!(entry["reason"].as_str(), Some("slow"), "{entry:?}");
    assert_eq!(entry["shard"].as_u64(), Some(0), "{entry:?}");
    assert!(entry["stages"]["queue_wait_us"].as_f64().is_some());

    // The detail serves the full span tree, Chrome-trace compatible.
    let r = c.get(&format!("/debug/traces/{request_id}"));
    assert_eq!(r.status, 200);
    let detail = r.json();
    assert_eq!(detail["reason"].as_str(), Some("slow"));
    assert_eq!(detail["ok"].as_bool(), Some(true));
    let events = detail["traceEvents"].as_array().expect("traceEvents");
    let names: std::collections::BTreeSet<&str> =
        events.iter().filter_map(|e| e["name"].as_str()).collect();
    for expected in [
        "parse",
        "serve_request",
        "queue_wait",
        "cache_lookup",
        "inference",
        "predict_job",
    ] {
        assert!(
            names.contains(expected),
            "span '{expected}' missing from retained tree {names:?}"
        );
    }
    for e in events {
        assert_eq!(e["ph"].as_str(), Some("X"), "{e:?}");
        assert!(e["ts"].as_f64().is_some() && e["dur"].as_f64().is_some());
    }

    // CI uploads the retained trace as an artifact.
    let target_dir = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
    let artifact = format!("{target_dir}/retained_traces.json");
    std::fs::write(
        &artifact,
        serde_json::to_string_pretty(&json!({
            "index": index,
            "slow_trace": detail,
        }))
        .expect("artifact serialises"),
    )
    .expect("write retained_traces.json");

    paragraph_obs::set_store_enabled(false);
    store.reset();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under full-queue shedding the debug surface must stay responsive —
/// it is served by the shard event loop, not the saturated workers —
/// and the shed request itself is retained with reason `shed`.
#[test]
fn debug_endpoints_respond_under_shedding() {
    let _guard = STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (dir, _ensemble) = build_model_dir("debugshed");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 1,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    paragraph_obs::set_store_enabled(true);
    let store = paragraph_obs::trace_store();
    store.reset();
    store.set_keep_one_in(0);
    store.set_slow_threshold_us(f64::MAX);
    let service: Arc<Service> = handle.services()[0].clone();

    // Saturate: one slow job on the worker, one in the queue.
    let mut pending = Vec::new();
    let mut shed = false;
    for k in 0..10 {
        let line = predict_line(700 + k, &chain_netlist(7_000 + k as usize, 2_000), None);
        match service.submit_line(&line) {
            Submitted::Pending(call) => pending.push(call),
            Submitted::Done(envelope) => {
                assert_eq!(envelope["error"]["code"].as_str(), Some("overloaded"));
                shed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(shed, "service never shed under a full queue");

    // An HTTP predict is shed 503 — and the debug surface still works.
    let mut c = HttpClient::connect(handle.addr());
    let r = c.post_json("/predict", &predict_body(1, NETLIST_A));
    assert_eq!(r.status, 503, "{:?}", r.json());
    let r = c.get("/debug/traces");
    assert_eq!(r.status, 200, "index must respond while shedding");
    let index = r.json();
    let shed_count = index["counters"]["retained_by_reason"]["shed"]
        .as_u64()
        .expect("shed counter");
    assert!(shed_count >= 1, "shed requests must be retained: {index:?}");
    let r = c.get("/debug/dashboard");
    assert_eq!(r.status, 200, "dashboard must respond while shedding");

    for call in pending {
        let _ = service.wait(call);
    }
    paragraph_obs::set_store_enabled(false);
    store.reset();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
