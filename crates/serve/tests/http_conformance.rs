//! HTTP/1.1 protocol conformance for the sharded gateway: routing,
//! keep-alive and Content-Length framing, header case-insensitivity,
//! malformed-request status codes, load shedding (`503` +
//! `Retry-After`), pipelining, and first-byte protocol sniffing parity
//! with the legacy JSON-lines server.

mod common;

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use common::{
    build_model_dir, direct_reference, predict_line, response_predictions, start_gateway,
    test_service_config, HttpClient, LineClient, NETLIST_A, NETLIST_B,
};
use paragraph_serve::{
    GatewayConfig, ModelRegistry, Server, Service, ServiceConfig, Submitted, ENSEMBLE_KEY,
};
use serde_json::{json, Value};

fn predict_body(id: u64, netlist: &str) -> String {
    serde_json::to_string(&json!({"id": id, "netlist": netlist})).unwrap()
}

#[test]
fn routes_and_keepalive_predict_match_direct_reference() {
    let (dir, ensemble) = build_model_dir("routes");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    let expected_a = direct_reference(&ensemble, NETLIST_A);
    assert!(expected_a.iter().any(|(_, v)| *v > 0.0));

    // Everything below flows over ONE keep-alive connection; each
    // successful framed response proves the previous one didn't close
    // or misframe the stream.
    let mut c = HttpClient::connect(handle.addr());

    let health = c.get("/health");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("content-type"), Some("application/json"));
    let health = health.json();
    assert_eq!(health["status"].as_str(), Some("ok"), "{health:?}");

    // `op` is implied on POST /predict; payload must be bit-identical
    // to the line protocol's and match the direct in-process reference.
    let cold = c.post_json("/predict", &predict_body(1, NETLIST_A));
    assert_eq!(cold.status, 200);
    let cold = cold.json();
    assert_eq!(cold["ok"].as_bool(), Some(true), "{cold:?}");
    assert_eq!(cold["id"].as_u64(), Some(1));
    assert_eq!(cold["cached"].as_bool(), Some(false));
    assert_eq!(response_predictions(&cold), expected_a);

    let warm = c.post_json("/predict", &predict_body(2, NETLIST_A)).json();
    assert_eq!(warm["cached"].as_bool(), Some(true));
    assert_eq!(
        cold["result"], warm["result"],
        "cache must serve identical payloads"
    );

    // An explicit `"op": "predict"` is accepted; any other op is not.
    let explicit = c.post_json("/predict", &predict_line(3, NETLIST_B, None));
    assert_eq!(explicit.status, 200);
    let wrong_op = c.post_json("/predict", r#"{"op": "health", "id": 4}"#);
    assert_eq!(wrong_op.status, 400);

    let metrics = c.get("/metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(metrics.body.clone()).unwrap();
    assert!(text.contains("shard=\"0\""), "per-shard labels expected");
    assert!(text.contains("shard=\"1\""), "per-shard labels expected");

    let snapshot = c.get("/metrics.json").json();
    assert_eq!(snapshot["shard_count"].as_u64(), Some(2));
    assert!(snapshot["totals"]["requests"].as_u64().unwrap() >= 4);

    let registry = c.get("/registry").json();
    let models: Vec<&str> = registry["models"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert!(models.contains(&"cap_1f"), "{registry:?}");
    assert!(models.contains(&ENSEMBLE_KEY), "{registry:?}");
    assert_eq!(registry["ensemble"].as_bool(), Some(true));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn headers_are_case_insensitive_and_connection_close_honoured() {
    let (dir, _ensemble) = build_model_dir("caseins");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    // Shouted header names and a shouted `Connection: CLOSE` value must
    // both be recognised.
    let mut c = HttpClient::connect(handle.addr());
    let body = predict_body(1, NETLIST_A);
    let r = c.request_raw(
        format!(
            "POST /predict HTTP/1.1\r\nhOsT: t\r\ncOnTeNt-LeNgTh: {}\r\nCONNECTION: CLOSE\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));
    c.assert_closed();

    // HTTP/1.0 defaults to close; `Connection: keep-alive` overrides.
    let mut c = HttpClient::connect(handle.addr());
    let r = c.request_raw(b"GET /health HTTP/1.0\r\n\r\n");
    assert_eq!(r.status, 200);
    c.assert_closed();

    let mut c = HttpClient::connect(handle.addr());
    let r = c.request_raw(b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    assert_eq!(r.status, 200);
    let again = c.get("/health");
    assert_eq!(again.status, 200, "keep-alive 1.0 connection must persist");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_parser_level_statuses() {
    let (dir, _ensemble) = build_model_dir("malformed");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    // (raw request, expected status); each closes the connection.
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET /health\r\n\r\n".to_vec(), 400),
        (b"GET /health HTTP/2.0\r\n\r\n".to_vec(), 505),
        (
            b"GET /health HTTP/1.1\r\nno colon here\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
    ];
    for (raw, expected) in cases {
        let mut c = HttpClient::connect(handle.addr());
        let r = c.request_raw(&raw);
        assert_eq!(
            r.status,
            expected,
            "request {:?}",
            String::from_utf8_lossy(&raw)
        );
        assert_eq!(r.header("connection"), Some("close"));
        c.assert_closed();
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_method_is_405_unknown_route_404_unknown_model_404() {
    let (dir, _ensemble) = build_model_dir("methods");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );
    let mut c = HttpClient::connect(handle.addr());

    // 405s advertise the allowed method and keep the connection alive.
    let r = c.request_raw(b"DELETE /health HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET"));
    let r = c.get("/predict");
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));

    let r = c.get("/no/such/route");
    assert_eq!(r.status, 404);

    // Envelope-level errors map onto statuses: unknown model is 404.
    let r = c.post_json(
        "/predict",
        &serde_json::to_string(&json!({"id": 1, "model": "nope", "netlist": NETLIST_A})).unwrap(),
    );
    assert_eq!(r.status, 404);
    assert_eq!(r.json()["error"]["code"].as_str(), Some("unknown_model"));

    // Invalid netlist is 400 through the same mapping.
    let r = c.post_json(
        "/predict",
        &serde_json::to_string(&json!({"id": 2, "netlist": "not spice at all"})).unwrap(),
    );
    assert_eq!(r.status, 400);
    assert_eq!(r.json()["error"]["code"].as_str(), Some("invalid_netlist"));

    // The connection survived every error above.
    assert_eq!(c.get("/health").status, 200);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A linear chain of `devices` transistors: parses fine, but is big
/// enough that one prediction occupies a worker for a while, holding
/// the shedding window open. `tag` keeps instance names (and the cache
/// key) unique per call.
fn chain_netlist(tag: usize, devices: usize) -> String {
    let mut s = String::new();
    for i in 0..devices {
        let j = i + 1;
        s.push_str(&format!("mq{tag}x{i} n{i} n{j} vss vss nch\n"));
    }
    s.push_str(".end\n");
    s
}

#[test]
fn load_shedding_yields_503_with_retry_after_and_structured_overloaded() {
    let (dir, _ensemble) = build_model_dir("shed");
    // One shard, one worker, queue of one, no batching, no cache: two
    // slow jobs saturate the shard completely.
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 1,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    let service: Arc<Service> = handle.services()[0].clone();

    // Fill the shard through the service API until it sheds: at that
    // point the worker is grinding a slow job and the queue is full.
    let mut pending = Vec::new();
    let mut shed_directly = false;
    for k in 0..10 {
        let line = predict_line(100 + k, &chain_netlist(k as usize, 2_000), None);
        match service.submit_line(&line) {
            Submitted::Pending(call) => pending.push(call),
            Submitted::Done(envelope) => {
                assert_eq!(
                    envelope["error"]["code"].as_str(),
                    Some("overloaded"),
                    "{envelope:?}"
                );
                shed_directly = true;
                break;
            }
        }
        // Give the worker a moment to pull the head job off the queue.
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(shed_directly, "service never shed under a full queue");

    // An HTTP predict arriving now is shed with 503 + Retry-After...
    let mut http = HttpClient::connect(handle.addr());
    let r = http.post_json("/predict", &predict_body(1, NETLIST_A));
    assert_eq!(r.status, 503, "{:?}", r.json());
    assert_eq!(r.header("retry-after"), Some("1"));
    assert_eq!(r.json()["error"]["code"].as_str(), Some("overloaded"));

    // ...and a JSON-lines client on the SAME port gets the structured
    // `overloaded` error, not a dropped connection.
    let mut line_client = LineClient::connect(handle.addr());
    let v = line_client.roundtrip(&predict_line(2, NETLIST_A, None));
    assert_eq!(v["ok"].as_bool(), Some(false));
    assert_eq!(v["error"]["code"].as_str(), Some("overloaded"));

    // Drain the slow jobs so shutdown is orderly.
    for call in pending {
        let _ = service.wait(call);
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_lines_over_gateway_is_byte_identical_to_legacy_server() {
    let (dir, _ensemble) = build_model_dir("parity");
    let config = test_service_config();
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let legacy_service = Arc::new(Service::new(registry, config.clone()));
    let legacy = Server::bind("127.0.0.1:0", legacy_service).unwrap().spawn();
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 2,
            service: config,
            ..GatewayConfig::default()
        },
    );

    let mut old = LineClient::connect(legacy.addr());
    let mut new = LineClient::connect(handle.addr());

    // Cold predict, warm (cached) predict, malformed JSON, unknown
    // model: every raw response line must match byte for byte.
    let requests = [
        predict_line(1, NETLIST_A, None),
        predict_line(2, NETLIST_A, None),
        "{malformed json".to_owned(),
        predict_line(3, NETLIST_B, Some("missing_model")),
        r#"{"op": "stats", "id": 4}"#.to_owned(),
    ];
    for request in &requests {
        old.send(request);
        new.send(request);
        let old_line = old.recv_raw();
        let new_line = new.recv_raw();
        // `stats` contains live latency numbers; compare ids only.
        if request.contains("stats") {
            let old_v: Value = serde_json::from_str(&old_line).unwrap();
            let new_v: Value = serde_json::from_str(&new_line).unwrap();
            assert_eq!(old_v["id"], new_v["id"]);
            assert_eq!(old_v["ok"], new_v["ok"]);
        } else {
            assert_eq!(old_line, new_line, "gateway diverged on: {request}");
        }
    }

    legacy.shutdown();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_http_requests_are_answered_in_order() {
    let (dir, _ensemble) = build_model_dir("pipeline");
    let handle = start_gateway(
        &dir,
        GatewayConfig {
            shards: 1,
            service: test_service_config(),
            ..GatewayConfig::default()
        },
    );

    let mut c = HttpClient::connect(handle.addr());
    let mut burst = Vec::new();
    for id in 1..=5_u64 {
        let body = predict_body(id, NETLIST_A);
        burst.extend_from_slice(
            format!(
                "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    c.stream.write_all(&burst).expect("write burst");
    for id in 1..=5_u64 {
        let r = c
            .read_response()
            .expect("response for each pipelined request");
        assert_eq!(r.status, 200);
        assert_eq!(r.json()["id"].as_u64(), Some(id), "responses out of order");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
