//! Shared scaffolding for the gateway test suites: model training,
//! gateway startup, a JSON-lines client, and a small blocking HTTP/1.1
//! client that understands Content-Length framing.
//!
//! Each test binary compiles its own copy (`mod common;`) and uses a
//! subset, hence the `dead_code` allowance.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use paragraph::{
    fit_norm, normalize_circuits, CapEnsemble, FitConfig, GnnKind, PreparedCircuit, SavedModel,
    Target, TargetModel,
};
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;
use paragraph_serve::{Gateway, GatewayConfig, GatewayHandle, ModelRegistry, ServiceConfig};
use serde_json::Value;

pub const NETLIST_A: &str = "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n";
pub const NETLIST_B: &str = "mp z a vdd vdd pch nf=2\nmn z a vss vss nch\nc1 z vss 1f\n.end\n";

/// A deadline long enough that tests never trip it by accident, short
/// enough that a hung read fails the test instead of wedging CI.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

pub fn train_cap_model(max_v: f64) -> TargetModel {
    let circuit = parse_spice(NETLIST_A).unwrap().flatten().unwrap();
    let mut train = vec![PreparedCircuit::new(
        "seed",
        circuit,
        &LayoutConfig::default(),
    )];
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    let mut fit = FitConfig::quick(GnnKind::Gcn);
    fit.epochs = 2;
    fit.embed_dim = 4;
    fit.layers = 1;
    TargetModel::train(&train, Target::Cap, Some(max_v), fit, &norm).0
}

/// Trains two range members, snapshots them into a fresh model dir named
/// by `tag`, and returns the dir plus the reference ensemble reloaded
/// from those very files (same JSON round trip the registry does).
pub fn build_model_dir(tag: &str) -> (PathBuf, CapEnsemble) {
    let dir = std::env::temp_dir().join(format!(
        "paragraph-gw-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut reloaded = Vec::new();
    for (name, max_v) in [("cap_1f", 1e-15), ("cap_10f", 10e-15)] {
        let model = train_cap_model(max_v);
        let json = SavedModel::from_model(&model).to_json();
        std::fs::write(dir.join(format!("{name}.json")), &json).unwrap();
        reloaded.push(SavedModel::from_json(&json).unwrap().into_model().unwrap());
    }
    let ensemble = CapEnsemble::try_new(reloaded).unwrap();
    (dir, ensemble)
}

/// Binds a gateway on an ephemeral port over `dir` and spawns it.
pub fn start_gateway(dir: &Path, config: GatewayConfig) -> GatewayHandle {
    let registry = Arc::new(ModelRegistry::open(dir).unwrap());
    Gateway::bind("127.0.0.1:0", registry, config)
        .unwrap()
        .spawn()
}

/// A small, fast service shape for tests.
pub fn test_service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        ..ServiceConfig::default()
    }
}

/// Expected `(net, value)` pairs for `netlist`, computed directly (no
/// server, no cache).
pub fn direct_reference(ensemble: &CapEnsemble, netlist: &str) -> Vec<(String, f64)> {
    let circuit = parse_spice(netlist).unwrap().flatten().unwrap();
    let preds = ensemble.predict_circuit(&circuit);
    circuit
        .nets()
        .iter()
        .zip(&preds)
        .filter_map(|(n, p)| p.map(|v| (n.name.clone(), v)))
        .collect()
}

pub fn response_predictions(response: &Value) -> Vec<(String, f64)> {
    response["result"]["predictions"]
        .as_array()
        .expect("predictions array")
        .iter()
        .map(|e| {
            (
                e["net"].as_str().expect("net name").to_owned(),
                e["value"].as_f64().expect("numeric value"),
            )
        })
        .collect()
}

pub fn predict_line(id: u64, netlist: &str, model: Option<&str>) -> String {
    let escaped = netlist.replace('\n', "\\n");
    match model {
        Some(m) => {
            format!(r#"{{"op": "predict", "id": {id}, "model": "{m}", "netlist": "{escaped}"}}"#)
        }
        None => format!(r#"{{"op": "predict", "id": {id}, "netlist": "{escaped}"}}"#),
    }
}

/// A JSON-lines client: one request line out, one response line back.
pub struct LineClient {
    pub writer: TcpStream,
    pub reader: BufReader<TcpStream>,
}

impl LineClient {
    pub fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(CLIENT_TIMEOUT))
            .expect("set timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self {
            writer: stream,
            reader,
        }
    }

    pub fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    /// Reads one raw response line (without the trailing newline).
    /// Panics if the server closed the connection.
    pub fn recv_raw(&mut self) -> String {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("read line");
        assert!(n > 0, "server dropped the connection");
        response.truncate(response.trim_end().len());
        response
    }

    pub fn roundtrip(&mut self, line: &str) -> Value {
        self.send(line);
        serde_json::from_str(&self.recv_raw()).expect("response is JSON")
    }
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Value {
        let text = std::str::from_utf8(&self.body).expect("body is UTF-8");
        serde_json::from_str(text).expect("body is JSON")
    }
}

/// A blocking HTTP/1.1 client over one (keep-alive) connection.
pub struct HttpClient {
    pub stream: TcpStream,
    pub reader: BufReader<TcpStream>,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(CLIENT_TIMEOUT))
            .expect("set timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self { stream, reader }
    }

    /// Writes `raw` bytes as-is, then reads one framed response.
    pub fn request_raw(&mut self, raw: &[u8]) -> HttpResponse {
        self.stream.write_all(raw).expect("write request");
        self.read_response().expect("server closed the connection")
    }

    pub fn get(&mut self, path: &str) -> HttpResponse {
        self.request_raw(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
    }

    pub fn post_json(&mut self, path: &str, body: &str) -> HttpResponse {
        self.request_raw(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
    }

    /// Reads one status line + headers + Content-Length body. Returns
    /// `None` on a cleanly closed connection.
    pub fn read_response(&mut self) -> Option<HttpResponse> {
        let mut status_line = String::new();
        if self
            .reader
            .read_line(&mut status_line)
            .expect("read status")
            == 0
        {
            return None;
        }
        let mut parts = status_line.trim_end().splitn(3, ' ');
        let version = parts.next().unwrap_or_default();
        assert!(version.starts_with("HTTP/1."), "bad version: {status_line}");
        let status: u16 = parts.next().expect("status code").parse().expect("numeric");
        let reason = parts.next().unwrap_or_default().to_owned();
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read header");
            assert!(n > 0, "connection closed mid-headers");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header has a colon");
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.parse().expect("numeric content-length"))
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("read body");
        Some(HttpResponse {
            status,
            reason,
            headers,
            body,
        })
    }

    /// True when the peer has closed the connection (next read sees EOF
    /// within the client timeout).
    pub fn assert_closed(&mut self) {
        let mut tmp = [0u8; 1];
        match self.reader.read(&mut tmp) {
            Ok(0) => {}
            Ok(_) => panic!("expected the server to close the connection"),
            Err(e) => panic!("expected clean EOF, got error: {e}"),
        }
    }
}
