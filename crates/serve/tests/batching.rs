//! Continuous micro-batching: the admission window must merge
//! concurrent requests into one forward pass, surface its timings and
//! metrics, never trade a deadline for batch occupancy, and leave the
//! served predictions bit-identical to an unwindowed gateway.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{
    build_model_dir, direct_reference, predict_line, response_predictions, test_service_config,
    LineClient, NETLIST_A, NETLIST_B,
};
use paragraph_serve::{GatewayConfig, ModelRegistry, Service, ServiceConfig, Submitted};
use serde_json::Value;

/// Distinct single-cap netlists so concurrent requests never collide in
/// the prediction cache yet resolve to the same model (one batch group).
fn netlist_variant(i: usize) -> String {
    format!(
        "mp z a vdd vdd pch nf=2\nmn z a vss vss nch\nc1 z vss {}f\n.end\n",
        i + 1
    )
}

fn debug_predict_line(id: u64, netlist: &str) -> String {
    let escaped = netlist.replace('\n', "\\n");
    format!(r#"{{"op": "predict", "id": {id}, "debug": true, "netlist": "{escaped}"}}"#)
}

/// Four clients firing together against a single-shard gateway with a
/// generous window must land in one batched forward pass (the window
/// closes early at `max_batch`), each response reporting the shared
/// batch and a `window_wait_us` stage.
#[test]
fn admission_window_batches_concurrent_requests() {
    let (dir, _ensemble) = build_model_dir("window-batch");
    let config = GatewayConfig {
        shards: 1,
        service: ServiceConfig {
            workers: 2,
            max_batch: 4,
            batch_window: Duration::from_secs(2),
            ..test_service_config()
        },
        ..GatewayConfig::default()
    };
    let gateway = common::start_gateway(&dir, config);
    let addr = gateway.addr();

    let responses: Vec<Value> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = LineClient::connect(addr);
                    client.roundtrip(&debug_predict_line(i as u64, &netlist_variant(i)))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, response) in responses.iter().enumerate() {
        assert!(
            response["result"]["predictions"].as_array().is_some(),
            "request {i} failed: {response:?}"
        );
        assert_eq!(
            response["debug"]["batched"].as_u64(),
            Some(4),
            "request {i} was not in the 4-wide batch: {:?}",
            response["debug"]
        );
        assert!(
            response["debug"]["stages"]["window_wait_us"]
                .as_f64()
                .is_some(),
            "request {i} is missing the window_wait_us stage: {:?}",
            response["debug"]
        );
    }

    // The batching families render through the shard-labeled exposition.
    let mut http = common::HttpClient::connect(addr);
    let metrics = http.get("/metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    for family in [
        "paragraph_serve_batch_size_bucket",
        "paragraph_serve_batches_formed_total",
        "paragraph_serve_window_admitted_jobs_total",
    ] {
        assert!(
            text.contains(family),
            "missing {family} in gateway metrics:\n{text}"
        );
    }
    let snapshot = http.get("/metrics.json").json();
    let formed: u64 = snapshot["shards"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|s| s["batching"]["batches_formed"].as_u64())
        .sum();
    assert!(formed >= 1, "no batch recorded in {snapshot:?}");

    gateway.shutdown();
}

/// A lone request under a window far longer than its deadline budget
/// must still succeed: the latency-budget guard closes the window after
/// at most half the remaining deadline, leaving the other half for
/// inference.
#[test]
fn window_never_spends_a_deadline() {
    let (dir, _ensemble) = build_model_dir("window-deadline");
    let registry = Arc::new(ModelRegistry::open(&dir).unwrap());
    let service = Service::new(
        registry,
        ServiceConfig {
            workers: 1,
            max_batch: 8,
            batch_window: Duration::from_secs(10),
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );

    let escaped = NETLIST_B.replace('\n', "\\n");
    let line =
        format!(r#"{{"op": "predict", "id": 1, "deadline_ms": 400, "netlist": "{escaped}"}}"#);
    let started = Instant::now();
    let response = match service.submit_line(&line) {
        Submitted::Done(v) => v,
        Submitted::Pending(call) => service.wait(call),
    };
    let elapsed = started.elapsed();
    assert!(
        response["result"]["predictions"].as_array().is_some(),
        "window starved the deadline: {response:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "lone windowed request took {elapsed:?} — budget guard did not close the window"
    );
}

/// Window-on gateways (1 and 4 shards) must serve byte-identical
/// predictions to a window-off gateway and to the direct in-process
/// reference.
#[test]
fn windowed_predictions_bitwise_match_unwindowed() {
    let (dir, ensemble) = build_model_dir("window-parity");
    let reference_a = direct_reference(&ensemble, NETLIST_A);
    let reference_b = direct_reference(&ensemble, NETLIST_B);

    for (label, shards, window) in [
        ("window off", 1, Duration::ZERO),
        ("1 shard windowed", 1, Duration::from_micros(200)),
        ("4 shards windowed", 4, Duration::from_micros(200)),
    ] {
        let config = GatewayConfig {
            shards,
            service: ServiceConfig {
                batch_window: window,
                ..test_service_config()
            },
            ..GatewayConfig::default()
        };
        let gateway = common::start_gateway(&dir, config);
        let mut client = LineClient::connect(gateway.addr());
        for (netlist, reference) in [(NETLIST_A, &reference_a), (NETLIST_B, &reference_b)] {
            let response = client.roundtrip(&predict_line(1, netlist, None));
            let served = response_predictions(&response);
            assert_eq!(
                served.len(),
                reference.len(),
                "{label}: prediction count drifted"
            );
            for ((sn, sv), (rn, rv)) in served.iter().zip(reference) {
                assert_eq!(sn, rn, "{label}: net order drifted");
                assert_eq!(
                    sv.to_bits(),
                    rv.to_bits(),
                    "{label}: prediction for {sn} drifted ({sv} vs {rv})"
                );
            }
        }
        gateway.shutdown();
    }
}
