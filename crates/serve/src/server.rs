//! TCP front end: accepts connections on a `std::net::TcpListener` and
//! speaks the JSON-lines protocol, one response line per request line.
//!
//! Each connection gets its own thread that funnels requests into the
//! shared [`Service`]; concurrency limits (worker pool size, queue
//! bound) are enforced by the service, not per connection, so a flood of
//! connections degrades into `overloaded` responses instead of unbounded
//! memory growth.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::service::Service;

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, service: Arc<Service>) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (not expected after a
    /// successful bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// for shutdown.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || self.accept_loop(&stop2))
            .expect("spawn accept thread");
        ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    /// Runs the accept loop on the calling thread, forever.
    pub fn run(self) -> ! {
        let never = AtomicBool::new(false);
        self.accept_loop(&never);
        unreachable!("accept loop only returns when stopped");
    }

    fn accept_loop(self, stop: &AtomicBool) {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = conn else { continue };
            let service = self.service.clone();
            let _ = std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(stream, &service));
        }
    }
}

/// Handle to a running server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// Already-open connections finish their current line and then drop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so a blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn handle_connection(stream: TcpStream, service: &Service) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}
