//! TCP front end: accepts connections on a `std::net::TcpListener` and
//! speaks the JSON-lines protocol, one response line per request line.
//!
//! Each connection gets its own thread that funnels requests into the
//! shared [`Service`]; concurrency limits (worker pool size, queue
//! bound) are enforced by the service, not per connection, so a flood of
//! connections degrades into `overloaded` responses instead of unbounded
//! memory growth.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::Service;

/// Default per-read deadline on a connection: a client that stops
/// sending mid-line for this long gets its connection (and thread)
/// reclaimed instead of pinning a `serve-conn` thread forever.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    read_timeout: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// the [`DEFAULT_READ_TIMEOUT`] stall deadline.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, service: Arc<Service>) -> std::io::Result<Self> {
        Self::bind_with_timeout(addr, service, DEFAULT_READ_TIMEOUT)
    }

    /// Binds `addr` with an explicit per-read stall deadline (tests use
    /// short ones to pin the reclaim behaviour).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind_with_timeout(
        addr: &str,
        service: Arc<Service>,
        read_timeout: Duration,
    ) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
            read_timeout,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (not expected after a
    /// successful bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// for shutdown.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || self.accept_loop(&stop2))
            .expect("spawn accept thread");
        ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        }
    }

    /// Runs the accept loop on the calling thread, forever.
    pub fn run(self) -> ! {
        let never = AtomicBool::new(false);
        self.accept_loop(&never);
        unreachable!("accept loop only returns when stopped");
    }

    fn accept_loop(self, stop: &AtomicBool) {
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = conn else { continue };
            let service = self.service.clone();
            let read_timeout = self.read_timeout;
            let _ = std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || handle_connection(stream, &service, read_timeout));
        }
    }
}

/// Handle to a running server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// Already-open connections finish their current line and then drop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so a blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn handle_connection(stream: TcpStream, service: &Service, read_timeout: Duration) {
    // A stalled client's blocking read now errors out after the
    // deadline instead of tying this thread up indefinitely.
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}
