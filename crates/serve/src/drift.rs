//! Serve-side drift monitor: compares a rolling window of incoming
//! circuit feature statistics against the training-set baselines
//! captured in the model artifact ([`paragraph::BaselineStats`]).
//!
//! Every `predict` request's raw (pre-normalisation) feature rows are
//! folded into per-`(node type, feature)` rolling windows. Two signals
//! come out:
//!
//! * **drift z-score** per feature — `|window mean − baseline mean| /
//!   baseline std`, exported as `paragraph_serve_drift_z{type,feature}`
//!   gauges; and
//! * **out-of-distribution requests** — a request is OOD when any
//!   feature value falls outside `[min − k·std, max + k·std]` of the
//!   training range. OOD requests count into
//!   `paragraph_serve_ood_requests_total`, and the rolling OOD fraction
//!   (`paragraph_serve_ood_fraction`) degrades the `health` op once
//!   enough requests have been seen.
//!
//! The monitor only *observes*; it never rejects a request or perturbs
//! predictions.

use std::sync::{Arc, Mutex};

use paragraph::{BaselineStats, NodeType};
use paragraph_obs::{Counter, Gauge, Registry, RollingQuantile};

use crate::registry::{LoadedModels, ModelRef};

/// Floor applied to baseline standard deviations so constant features
/// (std 0) don't turn every request into infinite drift.
const STD_FLOOR: f64 = 1e-9;

/// Tunables for [`DriftMonitor`].
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Rolling window length, both per `(type, feature)` value window
    /// and for the per-request OOD fraction.
    pub window: usize,
    /// z-score at/above which a feature is reported as drifted in
    /// health reasons.
    pub z_threshold: f64,
    /// Training-range slack `k`: a value outside
    /// `[min − k·std, max + k·std]` is out-of-distribution.
    pub ood_sigma: f64,
    /// Requests that must be observed before drift can flip health to
    /// `degraded` (avoids a cold-start false alarm).
    pub min_requests: usize,
    /// Rolling OOD request fraction at/above which health degrades.
    pub degraded_fraction: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 256,
            z_threshold: 4.0,
            ood_sigma: 4.0,
            min_requests: 8,
            degraded_fraction: 0.5,
        }
    }
}

/// Per-baseline state; rebuilt whenever the registry (re)loads.
#[derive(Debug)]
struct DriftState {
    baseline: BaselineStats,
    /// Rolling windows of incoming values, `[type][feature]`.
    windows: Vec<Vec<Arc<RollingQuantile>>>,
    /// Exported z-score gauges, `[type][feature]`.
    z_gauges: Vec<Vec<Arc<Gauge>>>,
}

/// Compares incoming circuits against training baselines. One per
/// [`crate::Service`]; shared with the worker pool behind an [`Arc`].
#[derive(Debug)]
pub struct DriftMonitor {
    config: DriftConfig,
    state: Mutex<Option<DriftState>>,
    ood_total: Arc<Counter>,
    ood_fraction: Arc<Gauge>,
    /// One 0/1 observation per predict request; the window mean is the
    /// rolling OOD fraction.
    requests: Arc<RollingQuantile>,
}

impl DriftMonitor {
    /// Creates an inactive monitor; its counters register into
    /// `registry` so the service render exposes them.
    pub fn new(registry: &Registry, config: DriftConfig) -> Self {
        let requests = Arc::new(RollingQuantile::new(config.window));
        Self {
            ood_total: registry.counter("paragraph_serve_ood_requests_total", &[]),
            ood_fraction: registry.gauge("paragraph_serve_ood_fraction", &[]),
            requests,
            state: Mutex::new(None),
            config,
        }
    }

    /// Installs (or clears) the baseline to compare against. Call after
    /// every registry load; passing `None` deactivates the monitor.
    pub fn set_baseline(&self, registry: &Registry, baseline: Option<BaselineStats>) {
        let next = baseline.map(|b| {
            let mut windows = Vec::with_capacity(b.mean.len());
            let mut z_gauges = Vec::with_capacity(b.mean.len());
            for (t, means) in b.mean.iter().enumerate() {
                let type_name = NodeType::ALL[t].name();
                let mut w = Vec::with_capacity(means.len());
                let mut g = Vec::with_capacity(means.len());
                for f in 0..means.len() {
                    let feature = format!("f{f}");
                    let labels = [("type", type_name), ("feature", feature.as_str())];
                    w.push(registry.rolling(
                        "paragraph_serve_feature_window",
                        &labels,
                        self.config.window,
                    ));
                    let gauge = registry.gauge("paragraph_serve_drift_z", &labels);
                    gauge.set(0.0);
                    g.push(gauge);
                }
                windows.push(w);
                z_gauges.push(g);
            }
            DriftState {
                baseline: b,
                windows,
                z_gauges,
            }
        });
        *lock(&self.state) = next;
    }

    /// Whether a baseline is installed.
    pub fn is_active(&self) -> bool {
        lock(&self.state).is_some()
    }

    /// Folds one request's raw feature rows (as produced by
    /// [`paragraph::raw_feature_rows`]) into the windows; returns
    /// whether any value was out of the training distribution. A no-op
    /// returning `false` when no baseline is installed.
    pub fn observe(&self, rows: &[Vec<Vec<f32>>]) -> bool {
        let mut guard = lock(&self.state);
        let Some(state) = guard.as_mut() else {
            return false;
        };
        let mut ood = false;
        for (t, type_rows) in rows.iter().enumerate() {
            if t >= state.windows.len() || state.baseline.rows.get(t).copied().unwrap_or(0) == 0 {
                continue; // node type unseen in training: nothing to judge against
            }
            let (means, stds) = (&state.baseline.mean[t], &state.baseline.std[t]);
            let (mins, maxs) = (&state.baseline.min[t], &state.baseline.max[t]);
            for row in type_rows {
                for (f, &v) in row.iter().enumerate().take(state.windows[t].len()) {
                    let v = v as f64;
                    state.windows[t][f].observe(v);
                    let slack = self.config.ood_sigma * stds[f].max(STD_FLOOR);
                    if v < mins[f] - slack || v > maxs[f] + slack {
                        ood = true;
                    }
                }
            }
            for (f, window) in state.windows[t].iter().enumerate() {
                let wm = window.window_mean();
                if wm.is_finite() {
                    let z = (wm - means[f]).abs() / stds[f].max(STD_FLOOR);
                    state.z_gauges[t][f].set(z);
                }
            }
        }
        drop(guard);
        self.requests.observe(if ood { 1.0 } else { 0.0 });
        if ood {
            self.ood_total.inc();
        }
        let frac = self.requests.window_mean();
        self.ood_fraction
            .set(if frac.is_finite() { frac } else { 0.0 });
        ood
    }

    /// Total OOD requests since startup.
    pub fn ood_requests_total(&self) -> u64 {
        self.ood_total.get()
    }

    /// Rolling OOD fraction over the last `window` requests (0.0 before
    /// any request).
    pub fn ood_fraction(&self) -> f64 {
        let f = self.requests.window_mean();
        if f.is_finite() {
            f
        } else {
            0.0
        }
    }

    /// Current per-feature drift z-scores as `("<node-type> f<i>", z)`
    /// pairs, in node-type then feature order; empty when no baseline
    /// is installed. The labels match the feature names used in
    /// [`DriftMonitor::status`] degradation reasons.
    pub fn z_scores(&self) -> Vec<(String, f64)> {
        let guard = lock(&self.state);
        let Some(state) = guard.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (t, gauges) in state.z_gauges.iter().enumerate() {
            for (f, gauge) in gauges.iter().enumerate() {
                out.push((format!("{} f{f}", NodeType::ALL[t].name()), gauge.get()));
            }
        }
        out
    }

    /// Health verdict: `(degraded, reasons)`. Degrades only after
    /// `min_requests` observations with the rolling OOD fraction at or
    /// above `degraded_fraction`; reasons also name features whose
    /// z-score exceeds the threshold.
    pub fn status(&self) -> (bool, Vec<String>) {
        let guard = lock(&self.state);
        let Some(state) = guard.as_ref() else {
            return (false, Vec::new());
        };
        let seen = self.requests.window_len();
        let frac = self.requests.window_mean();
        let degraded = seen >= self.config.min_requests
            && frac.is_finite()
            && frac >= self.config.degraded_fraction;
        if !degraded {
            return (false, Vec::new());
        }
        let mut reasons = vec![format!(
            "{:.0}% of the last {seen} predict requests were out-of-distribution",
            frac * 100.0
        )];
        for (t, gauges) in state.z_gauges.iter().enumerate() {
            for (f, gauge) in gauges.iter().enumerate() {
                let z = gauge.get();
                if z >= self.config.z_threshold {
                    reasons.push(format!(
                        "feature drift: {} f{f} z={z:.1}",
                        NodeType::ALL[t].name()
                    ));
                }
            }
        }
        (true, reasons)
    }
}

/// Picks the baseline to monitor against from a registry snapshot: the
/// default-resolved model's stats, falling back to any model that
/// carries them. Returns `None` when no loaded model has baselines
/// (e.g. artifacts predating baseline capture).
pub(crate) fn baseline_from_snapshot(snapshot: &LoadedModels) -> Option<BaselineStats> {
    if let Ok((_, model)) = snapshot.resolve(None) {
        let found = match &model {
            ModelRef::Single(m) => m.baseline.clone(),
            ModelRef::Ensemble(e) => e.members().iter().find_map(|m| m.baseline.clone()),
        };
        if found.is_some() {
            return found;
        }
    }
    snapshot.models.values().find_map(|m| m.baseline.clone())
}

/// Locks ignoring poison: drift bookkeeping must survive a panicking
/// worker elsewhere in the process.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic baseline with one node type (nets, type index of
    /// [`NodeType::ALL`] position 0) carrying a single feature centred
    /// at 10 with std 1 and range [8, 12].
    fn baseline() -> BaselineStats {
        let types = NodeType::ALL.len();
        let mut b = BaselineStats {
            mean: vec![Vec::new(); types],
            std: vec![Vec::new(); types],
            min: vec![Vec::new(); types],
            max: vec![Vec::new(); types],
            rows: vec![0; types],
            label_min: Some(1e-15),
            label_max: Some(1e-12),
            labelled_nodes: 4,
        };
        b.mean[0] = vec![10.0];
        b.std[0] = vec![1.0];
        b.min[0] = vec![8.0];
        b.max[0] = vec![12.0];
        b.rows[0] = 100;
        b
    }

    fn monitor(config: DriftConfig) -> (Registry, DriftMonitor) {
        let registry = Registry::new();
        let m = DriftMonitor::new(&registry, config);
        m.set_baseline(&registry, Some(baseline()));
        (registry, m)
    }

    fn rows(value: f32) -> Vec<Vec<Vec<f32>>> {
        let mut rows = vec![Vec::new(); NodeType::ALL.len()];
        rows[0] = vec![vec![value]];
        rows
    }

    #[test]
    fn inactive_monitor_never_degrades() {
        let registry = Registry::new();
        let m = DriftMonitor::new(&registry, DriftConfig::default());
        assert!(!m.is_active());
        assert!(!m.observe(&rows(1e9)));
        assert_eq!(m.ood_requests_total(), 0);
        assert_eq!(m.status(), (false, Vec::new()));
    }

    #[test]
    fn in_distribution_stays_green() {
        let (_r, m) = monitor(DriftConfig::default());
        for _ in 0..32 {
            assert!(!m.observe(&rows(10.5)));
        }
        assert_eq!(m.ood_requests_total(), 0);
        let (degraded, reasons) = m.status();
        assert!(!degraded, "{reasons:?}");
    }

    #[test]
    fn out_of_range_batch_degrades_health() {
        let config = DriftConfig {
            min_requests: 4,
            ..DriftConfig::default()
        };
        let (_r, m) = monitor(config);
        // Range [8, 12], std 1, k = 4 => anything beyond [4, 16] is OOD.
        for _ in 0..8 {
            assert!(m.observe(&rows(1000.0)));
        }
        assert_eq!(m.ood_requests_total(), 8);
        assert!((m.ood_fraction() - 1.0).abs() < 1e-12);
        let (degraded, reasons) = m.status();
        assert!(degraded);
        assert!(
            reasons.iter().any(|r| r.contains("out-of-distribution")),
            "{reasons:?}"
        );
        assert!(
            reasons.iter().any(|r| r.contains("feature drift")),
            "{reasons:?}"
        );
    }

    #[test]
    fn recovery_clears_degraded_state() {
        let config = DriftConfig {
            window: 8,
            min_requests: 4,
            ..DriftConfig::default()
        };
        let (_r, m) = monitor(config);
        for _ in 0..8 {
            m.observe(&rows(1000.0));
        }
        assert!(m.status().0);
        // The bad batch ages out of the window as healthy traffic flows.
        for _ in 0..8 {
            m.observe(&rows(10.0));
        }
        let (degraded, reasons) = m.status();
        assert!(!degraded, "{reasons:?}");
        assert_eq!(m.ood_requests_total(), 8, "lifetime counter keeps history");
    }

    #[test]
    fn drift_gauges_render_with_labels() {
        let (registry, m) = monitor(DriftConfig::default());
        m.observe(&rows(10.0));
        let text = registry.render_prometheus();
        assert!(
            text.contains("paragraph_serve_drift_z{feature=\"f0\",type=\"net\"}")
                || text.contains("paragraph_serve_drift_z{type=\"net\",feature=\"f0\"}"),
            "missing drift gauge in:\n{text}"
        );
        assert!(text.contains("paragraph_serve_ood_requests_total"));
    }

    #[test]
    fn baseline_survives_slack_edges() {
        let (_r, m) = monitor(DriftConfig {
            min_requests: 1,
            ..DriftConfig::default()
        });
        // Just inside the slack band: min - k*std = 8 - 4 = 4.
        assert!(!m.observe(&rows(4.5)));
        // Just outside.
        assert!(m.observe(&rows(3.5)));
    }
}
