//! Model registry: loads a directory of [`SavedModel`] JSON snapshots,
//! validates each against the circuit schema, assembles capacitance-range
//! members into a [`CapEnsemble`], and supports atomic hot reload.
//!
//! Readers hold an [`Arc`] to an immutable [`LoadedModels`] snapshot;
//! [`ModelRegistry::reload`] builds a complete new snapshot off to the
//! side and swaps it in only when every file loaded cleanly, so requests
//! in flight never observe a half-loaded registry.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use paragraph::{CapEnsemble, ExecutorMode, Precision, SavedModel, TargetModel};

/// Reserved model key that routes to the assembled [`CapEnsemble`].
pub const ENSEMBLE_KEY: &str = "cap_ensemble";

/// Error from loading or reloading the registry.
#[derive(Debug, Clone)]
pub struct RegistryError {
    message: String,
}

impl RegistryError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RegistryError {}

/// A model a request can resolve to.
#[derive(Debug, Clone)]
pub enum ModelRef {
    /// One snapshot.
    Single(Arc<TargetModel>),
    /// The assembled capacitance ensemble.
    Ensemble(Arc<CapEnsemble>),
}

impl ModelRef {
    /// Whether inference for this model currently runs on the compiled
    /// tape-free executor (vs the autograd tape); used to label the
    /// per-path serving metrics. Ensembles report their members' shared
    /// mode (all members are stamped identically at load time).
    pub fn uses_executor(&self) -> bool {
        match self {
            ModelRef::Single(m) => m.uses_executor(),
            ModelRef::Ensemble(e) => e.members().first().is_some_and(|m| m.uses_executor()),
        }
    }

    /// Flag-style name of the precision inference for this model runs
    /// at (`f32`/`f16`/`int8`); used to label the per-precision serving
    /// metrics. Ensembles report their members' shared precision.
    pub fn precision_name(&self) -> &'static str {
        match self {
            ModelRef::Single(m) => m.precision_name(),
            ModelRef::Ensemble(e) => e
                .members()
                .first()
                .map(|m| m.precision_name())
                .unwrap_or("f32"),
        }
    }
}

/// An immutable snapshot of everything the registry has loaded.
#[derive(Debug, Default)]
pub struct LoadedModels {
    /// Individual models keyed by snapshot file stem, sorted.
    pub models: BTreeMap<String, Arc<TargetModel>>,
    /// Ensemble assembled from all CAP members with a `max_value`
    /// (present only when there are at least two).
    pub ensemble: Option<Arc<CapEnsemble>>,
    /// Keys of the models folded into the ensemble, ascending `max_v`.
    pub ensemble_members: Vec<String>,
}

impl LoadedModels {
    /// Resolves a request's model key. `None` picks the ensemble when
    /// one exists, else the sole loaded model.
    ///
    /// # Errors
    ///
    /// Returns a message listing the available keys.
    pub fn resolve(&self, key: Option<&str>) -> Result<(String, ModelRef), String> {
        match key {
            Some(ENSEMBLE_KEY) => self
                .ensemble
                .clone()
                .map(|e| (ENSEMBLE_KEY.to_owned(), ModelRef::Ensemble(e)))
                .ok_or_else(|| self.unknown(ENSEMBLE_KEY)),
            Some(name) => self
                .models
                .get(name)
                .cloned()
                .map(|m| (name.to_owned(), ModelRef::Single(m)))
                .ok_or_else(|| self.unknown(name)),
            None => {
                if let Some(e) = &self.ensemble {
                    return Ok((ENSEMBLE_KEY.to_owned(), ModelRef::Ensemble(e.clone())));
                }
                if self.models.len() == 1 {
                    let (name, m) = self.models.iter().next().expect("len checked");
                    return Ok((name.clone(), ModelRef::Single(m.clone())));
                }
                Err(format!(
                    "no default model (no ensemble, {} individual models); specify one of [{}]",
                    self.models.len(),
                    self.keys().join(", ")
                ))
            }
        }
    }

    /// Every addressable key, ensemble first.
    pub fn keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        if self.ensemble.is_some() {
            keys.push(ENSEMBLE_KEY.to_owned());
        }
        keys.extend(self.models.keys().cloned());
        keys
    }

    fn unknown(&self, name: &str) -> String {
        format!(
            "unknown model '{}'; available: [{}]",
            name,
            self.keys().join(", ")
        )
    }

    /// Builds a snapshot from in-memory models (no disk involved); used
    /// by benches and in-process embedders.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] when ensemble assembly fails (e.g. two
    /// CAP members share a `max_value`).
    pub fn from_models(
        named: impl IntoIterator<Item = (String, TargetModel)>,
    ) -> Result<Self, RegistryError> {
        let mut snapshot = LoadedModels::default();
        for (name, model) in named {
            if snapshot.models.contains_key(&name) {
                return Err(RegistryError::new(format!("duplicate model key '{name}'")));
            }
            snapshot.models.insert(name, Arc::new(model));
        }
        snapshot.assemble_ensemble()?;
        Ok(snapshot)
    }

    fn assemble_ensemble(&mut self) -> Result<(), RegistryError> {
        let mut members: Vec<(String, TargetModel)> = self
            .models
            .iter()
            .filter(|(_, m)| m.target == paragraph::Target::Cap && m.max_value.is_some())
            .map(|(k, m)| (k.clone(), (**m).clone()))
            .collect();
        if members.len() < 2 {
            return Ok(());
        }
        members.sort_by(|a, b| {
            a.1.max_value
                .partial_cmp(&b.1.max_value)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let (keys, models): (Vec<String>, Vec<TargetModel>) = members.into_iter().unzip();
        let ensemble = CapEnsemble::try_new(models)
            .map_err(|e| RegistryError::new(format!("cannot assemble {ENSEMBLE_KEY}: {e}")))?;
        self.ensemble = Some(Arc::new(ensemble));
        self.ensemble_members = keys;
        Ok(())
    }
}

/// Summary of a successful (re)load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadReport {
    /// Individual models now loaded.
    pub models: usize,
    /// Whether an ensemble was assembled.
    pub ensemble: bool,
}

/// Thread-safe registry handle. Cheap to clone an `Arc` of; readers are
/// never blocked by a reload for longer than the pointer swap.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: Option<PathBuf>,
    executor: ExecutorMode,
    precision: Option<Precision>,
    current: RwLock<Arc<LoadedModels>>,
}

impl ModelRegistry {
    /// Loads every `*.json` snapshot under `dir` with the default
    /// [`ExecutorMode::Auto`] inference path (compiled executor when the
    /// model compiles, autograd tape otherwise — further gated by the
    /// process-wide [`paragraph::executor_default`]).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] when the directory cannot be read, any
    /// snapshot fails to parse or validate against the circuit schema,
    /// or ensemble assembly fails. Nothing is partially loaded.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        Self::open_with_executor(dir, ExecutorMode::Auto)
    }

    /// Like [`Self::open`] but stamps every loaded model (and ensemble
    /// member) with `executor`. The mode is remembered and reapplied on
    /// every [`Self::reload`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::open`].
    pub fn open_with_executor(
        dir: impl Into<PathBuf>,
        executor: ExecutorMode,
    ) -> Result<Self, RegistryError> {
        Self::open_with(dir, executor, None)
    }

    /// Like [`Self::open_with_executor`], additionally stamping every
    /// loaded model with a compiled-path `precision`. A model whose
    /// artifact pins its own precision keeps the pin — so
    /// accuracy-critical targets can stay `f32` while the rest of the
    /// registry serves quantized. `None` leaves models on the
    /// process-wide default. Both settings are remembered and reapplied
    /// on every [`Self::reload`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::open`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        executor: ExecutorMode,
        precision: Option<Precision>,
    ) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let snapshot = load_dir(&dir, executor, precision)?;
        Ok(Self {
            dir: Some(dir),
            executor,
            precision,
            current: RwLock::new(Arc::new(snapshot)),
        })
    }

    /// Wraps an in-memory snapshot (no backing directory; [`Self::reload`]
    /// is a no-op that reports the current contents).
    pub fn from_snapshot(snapshot: LoadedModels) -> Self {
        Self {
            dir: None,
            executor: ExecutorMode::Auto,
            precision: None,
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot; holders keep observing it even across
    /// concurrent reloads.
    pub fn current(&self) -> Arc<LoadedModels> {
        self.current.read().expect("registry lock poisoned").clone()
    }

    /// Re-scans the backing directory and atomically swaps in the new
    /// snapshot; on error the previous snapshot stays active.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::open`].
    pub fn reload(&self) -> Result<ReloadReport, RegistryError> {
        let snapshot = match &self.dir {
            Some(dir) => load_dir(dir, self.executor, self.precision)?,
            None => return Ok(self.report()),
        };
        let report = ReloadReport {
            models: snapshot.models.len(),
            ensemble: snapshot.ensemble.is_some(),
        };
        *self.current.write().expect("registry lock poisoned") = Arc::new(snapshot);
        Ok(report)
    }

    fn report(&self) -> ReloadReport {
        let cur = self.current();
        ReloadReport {
            models: cur.models.len(),
            ensemble: cur.ensemble.is_some(),
        }
    }
}

fn load_dir(
    dir: &Path,
    executor: ExecutorMode,
    precision: Option<Precision>,
) -> Result<LoadedModels, RegistryError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| RegistryError::new(format!("cannot read {}: {e}", dir.display())))?;
    let mut named = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| RegistryError::new(format!("cannot list {}: {e}", dir.display())))?
            .path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| RegistryError::new(format!("bad file name {}", path.display())))?
            .to_owned();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| RegistryError::new(format!("cannot read {}: {e}", path.display())))?;
        let mut model = SavedModel::from_json(&text)
            .and_then(SavedModel::into_model)
            .map_err(|e| RegistryError::new(format!("{}: {e}", path.display())))?;
        // Ensemble members are cloned out of this set, so stamping here
        // covers both individual models and the assembled ensemble. An
        // artifact's own precision pin wins over the registry-wide
        // setting.
        model.executor = executor;
        if model.precision.is_none() {
            model.precision = precision;
        }
        named.push((stem, model));
    }
    LoadedModels::from_models(named)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_resolves_nothing() {
        let snapshot = LoadedModels::default();
        assert!(snapshot.resolve(None).is_err());
        let err = snapshot.resolve(Some("x")).unwrap_err();
        assert!(err.contains("unknown model 'x'"), "{err}");
        assert!(snapshot.keys().is_empty());
    }

    #[test]
    fn open_missing_dir_errors() {
        assert!(ModelRegistry::open("/nonexistent/paragraph-models").is_err());
    }
}
