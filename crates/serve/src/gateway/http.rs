//! Minimal HTTP/1.1 request parsing and response encoding for the
//! gateway — enough of RFC 9112 for keep-alive API traffic: request
//! line, case-insensitive headers, `Content-Length` bodies, and
//! `Connection` semantics. Anything outside that subset gets a precise
//! error status rather than a guess (`Transfer-Encoding` → 501,
//! unsupported version → 505, oversized → 413/431).

/// One fully received request, borrowed views resolved into owned data
/// so the connection buffer can be drained immediately.
#[derive(Debug, PartialEq)]
pub struct ParsedRequest {
    /// Request method, as sent (methods are case-sensitive).
    pub method: String,
    /// Request target, e.g. `/predict`; query strings are kept as-is.
    pub path: String,
    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way.
    pub keep_alive: bool,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Outcome of trying to parse the front of a connection buffer.
#[derive(Debug, PartialEq)]
pub enum HttpParse {
    /// Not enough bytes yet; read more.
    Incomplete,
    /// Irrecoverably malformed: answer with `status` and close.
    Bad {
        /// HTTP status code to answer with.
        status: u16,
        /// Reason phrase for the status line.
        reason: &'static str,
        /// Human-readable detail for the error body.
        message: String,
    },
    /// One complete request; `consumed` bytes can be drained.
    Ok {
        /// The parsed request.
        req: ParsedRequest,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
}

fn bad(status: u16, reason: &'static str, message: impl Into<String>) -> HttpParse {
    HttpParse::Bad {
        status,
        reason,
        message: message.into(),
    }
}

/// Parses one request from the front of `buf`.
///
/// `max_header` bounds the head (request line + headers) and
/// `max_body` bounds `Content-Length`; exceeding them yields 431 / 413
/// so a hostile peer cannot grow the buffer without limit.
pub fn parse(buf: &[u8], max_header: usize, max_body: usize) -> HttpParse {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > max_header {
            return bad(
                431,
                "Request Header Fields Too Large",
                "request head too large",
            );
        }
        return HttpParse::Incomplete;
    };
    if head_len > max_header {
        return bad(
            431,
            "Request Header Fields Too Large",
            "request head too large",
        );
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return bad(400, "Bad Request", "request head is not valid UTF-8");
    };
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.splitn(3, ' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(
            400,
            "Bad Request",
            format!("malformed request line: {request_line:?}"),
        );
    };
    if method.is_empty() || path.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return bad(
            400,
            "Bad Request",
            format!("malformed request line: {request_line:?}"),
        );
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => {
            return bad(505, "HTTP Version Not Supported", format!("version {v:?}"))
        }
        v => return bad(400, "Bad Request", format!("malformed version: {v:?}")),
    };
    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return bad(
                400,
                "Bad Request",
                format!("malformed header line: {line:?}"),
            );
        };
        // RFC 9112 §5.1: whitespace between field name and colon must be
        // rejected (request-smuggling vector).
        if name.is_empty() || name.ends_with(' ') || name.ends_with('\t') {
            return bad(
                400,
                "Bad Request",
                format!("malformed header name: {name:?}"),
            );
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(n) = value.parse::<usize>() else {
                return bad(400, "Bad Request", format!("bad Content-Length: {value:?}"));
            };
            if content_length.is_some_and(|prev| prev != n) {
                return bad(400, "Bad Request", "conflicting Content-Length headers");
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return bad(
                501,
                "Not Implemented",
                "Transfer-Encoding is not supported; send Content-Length",
            );
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    let body_len = content_length.unwrap_or(0);
    if body_len > max_body {
        return bad(
            413,
            "Content Too Large",
            format!("body of {body_len} bytes exceeds the {max_body} byte limit"),
        );
    }
    if buf.len() < head_len + body_len {
        return HttpParse::Incomplete;
    }
    HttpParse::Ok {
        req: ParsedRequest {
            method: method.to_owned(),
            path: path.to_owned(),
            keep_alive,
            body: buf[head_len..head_len + body_len].to_vec(),
        },
        consumed: head_len + body_len,
    }
}

/// Offset one past the blank line ending the head, accepting bare-LF
/// line endings alongside CRLF.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Encodes one response with `Content-Length` framing. `extra_headers`
/// lines are verbatim `Name: value` pairs (no trailing CRLF).
pub fn response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[&str],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    for header in extra_headers {
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if !keep_alive {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// A JSON error body shaped like the line protocol's error envelope, so
/// HTTP clients and JSON-lines clients read the same fields.
pub fn error_body(code: &str, message: &str) -> Vec<u8> {
    serde_json::to_string(&serde_json::json!({
        "ok": false,
        "error": {"code": code, "message": message},
    }))
    .expect("error body serialises")
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HDR: usize = 16 * 1024;
    const BODY: usize = 1024 * 1024;

    #[test]
    fn parses_get_without_body() {
        let buf = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse(buf, HDR, BODY) {
            HttpParse::Ok { req, consumed } => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/health");
                assert!(req.keep_alive);
                assert!(req.body.is_empty());
                assert_eq!(consumed, buf.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_post_with_content_length() {
        let buf = b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"extra";
        match parse(buf, HDR, BODY) {
            HttpParse::Ok { req, consumed } => {
                assert_eq!(req.body, b"{\"a\"");
                assert_eq!(consumed, buf.len() - 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let buf = b"POST /predict HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345";
        assert_eq!(parse(buf, HDR, BODY), HttpParse::Incomplete);
    }

    #[test]
    fn headers_are_case_insensitive() {
        let buf = b"POST /p HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\nCONNECTION: CLOSE\r\n\r\nok";
        match parse(buf, HDR, BODY) {
            HttpParse::Ok { req, .. } => {
                assert_eq!(req.body, b"ok");
                assert!(!req.keep_alive);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn http10_defaults_to_close_keepalive_header_overrides() {
        let buf = b"GET / HTTP/1.0\r\n\r\n";
        match parse(buf, HDR, BODY) {
            HttpParse::Ok { req, .. } => assert!(!req.keep_alive),
            other => panic!("{other:?}"),
        }
        let buf = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        match parse(buf, HDR, BODY) {
            HttpParse::Ok { req, .. } => assert!(req.keep_alive),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_request_line_is_400() {
        for bad_req in [
            "GARBAGE\r\n\r\n",
            "GET /x\r\n\r\n",
            "G=T /x HTTP/1.1\r\n\r\n",
            " GET /x HTTP/1.1\r\n\r\n",
        ] {
            match parse(bad_req.as_bytes(), HDR, BODY) {
                HttpParse::Bad { status: 400, .. } => {}
                other => panic!("{bad_req:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_headers_are_400() {
        for bad_req in [
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "GET / HTTP/1.1\r\nName : v\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
        ] {
            match parse(bad_req.as_bytes(), HDR, BODY) {
                HttpParse::Bad { status: 400, .. } => {}
                other => panic!("{bad_req:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn unsupported_version_and_encoding() {
        match parse(b"GET / HTTP/2.0\r\n\r\n", HDR, BODY) {
            HttpParse::Bad { status: 505, .. } => {}
            other => panic!("{other:?}"),
        }
        match parse(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            HDR,
            BODY,
        ) {
            HttpParse::Bad { status: 501, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversize_limits() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        match parse(huge.as_bytes(), 32, BODY) {
            HttpParse::Bad { status: 431, .. } => {}
            other => panic!("{other:?}"),
        }
        // A partial head that already exceeds the limit must not wait
        // for more bytes.
        let partial = "GET /aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        match parse(partial.as_bytes(), 32, BODY) {
            HttpParse::Bad { status: 431, .. } => {}
            other => panic!("{other:?}"),
        }
        match parse(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", HDR, 100) {
            HttpParse::Bad { status: 413, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let buf = b"GET /health HTTP/1.1\nHost: x\n\n";
        match parse(buf, HDR, BODY) {
            HttpParse::Ok { req, .. } => assert_eq!(req.path, "/health"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_encoding_framing() {
        let r = response(200, "OK", "application/json", b"{}", true, &[]);
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let r = response(
            503,
            "Service Unavailable",
            "application/json",
            b"x",
            false,
            &["Retry-After: 1"],
        );
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
