//! Per-connection state machine for the gateway's evented loop.
//!
//! Each [`Conn`] wraps one nonblocking [`TcpStream`] and is ticked by
//! its shard: flush pending output, poll the in-flight request, read
//! whatever bytes are available, and drive the protocol forward. The
//! first non-whitespace byte decides the protocol — `{` means the
//! JSON-lines line protocol, anything else is parsed as HTTP/1.1 — so
//! both kinds of client share one port.
//!
//! One request is in flight per connection at a time: responses stay in
//! order (JSON-lines contract, HTTP pipelining) and a connection that
//! floods requests is back-pressured by simply not reading more until
//! the current one resolves.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use serde_json::Value;

use super::http::{self, HttpParse};
use super::ShardCtx;
use crate::protocol::{error_response, ErrorCode, Op, Request, ServeError};
use crate::service::PendingCall;
use crate::service::Submitted;

/// What the first bytes said this connection speaks.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Proto {
    /// Nothing but whitespace seen yet.
    Undecided,
    /// The JSON-lines protocol served by the legacy acceptor.
    JsonLines,
    /// HTTP/1.1 (or 1.0) keep-alive.
    Http,
}

/// How to encode the in-flight request's response when it resolves.
#[derive(Debug, Clone, Copy)]
enum RespKind {
    /// One compact JSON line plus `\n`.
    JsonLine,
    /// An HTTP response; `keep_alive` false closes after the flush.
    Http { keep_alive: bool },
}

/// One gateway connection.
pub(super) struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Encoded response bytes not yet written.
    out: Vec<u8>,
    /// How much of `out` has been written.
    out_pos: usize,
    proto: Proto,
    inflight: Option<(PendingCall, RespKind)>,
    /// Last time this connection made progress (bytes moved or a
    /// request resolved); drives the stall and idle deadlines.
    last_activity: Instant,
    read_closed: bool,
    close_after_flush: bool,
}

impl Conn {
    pub(super) fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            proto: Proto::Undecided,
            inflight: None,
            last_activity: Instant::now(),
            read_closed: false,
            close_after_flush: false,
        }
    }

    fn out_done(&self) -> bool {
        self.out_pos == self.out.len()
    }

    /// True while a request is waiting on a worker; the shard loop
    /// polls more eagerly then.
    pub(super) fn has_inflight(&self) -> bool {
        self.inflight.is_some()
    }

    /// One scheduling quantum: returns `false` when the connection is
    /// finished and should be dropped. Sets `*progress` when any bytes
    /// moved or a request resolved, so the shard loop knows not to
    /// sleep.
    pub(super) fn tick(&mut self, ctx: &ShardCtx, progress: &mut bool) -> bool {
        let mut active = false;

        if !self.flush(&mut active) {
            return false;
        }

        // Poll the in-flight request; on resolution, encode and fall
        // through so a pipelined follow-up can be dispatched this tick.
        if let Some((call, kind)) = self.inflight.take() {
            match ctx.service.poll(call) {
                Ok(envelope) => {
                    self.encode_envelope(&envelope, kind);
                    active = true;
                }
                Err(call) => self.inflight = Some((call, kind)),
            }
        }

        // Read only while nothing is in flight: ordered responses and
        // natural backpressure against request floods.
        if self.inflight.is_none() && !self.read_closed {
            let mut tmp = [0u8; 8192];
            loop {
                match self.stream.read(&mut tmp) {
                    Ok(0) => {
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        self.buf.extend_from_slice(&tmp[..n]);
                        active = true;
                        if n < tmp.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
        }

        if !self.drive(ctx, &mut active) {
            return false;
        }
        if !self.flush(&mut active) {
            return false;
        }

        let now = Instant::now();
        if active {
            self.last_activity = now;
            *progress = true;
        }

        if self.close_after_flush && self.inflight.is_none() && self.out_done() {
            return false;
        }
        if self.read_closed && self.inflight.is_none() && self.out_done() && self.buf.is_empty() {
            return false;
        }

        // A partial request that stopped making progress (slow-loris)
        // gets a timeout response and the connection is closed; a
        // fully-idle keep-alive connection is eventually reclaimed.
        let stalled = now.duration_since(self.last_activity);
        if self.inflight.is_none() && !self.buf.is_empty() && stalled >= ctx.config.read_deadline {
            match self.proto {
                Proto::JsonLines => self.push_json_line(&error_response(
                    &Value::Null,
                    &ServeError::new(
                        ErrorCode::DeadlineExceeded,
                        "timed out waiting for a complete request line",
                    ),
                )),
                Proto::Http | Proto::Undecided => {
                    let body = http::error_body(
                        "deadline_exceeded",
                        "timed out waiting for a complete request",
                    );
                    self.out.extend_from_slice(&http::response(
                        408,
                        "Request Timeout",
                        "application/json",
                        &body,
                        false,
                        &[],
                    ));
                }
            }
            self.buf.clear();
            self.close_after_flush = true;
            *progress = true;
        } else if self.inflight.is_none()
            && self.buf.is_empty()
            && self.out_done()
            && stalled >= ctx.config.idle_deadline
        {
            return false;
        }
        true
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush(&mut self, active: &mut bool) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.out_pos += n;
                    *active = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.out_done() && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
        true
    }

    /// Consumes complete requests from the front of `buf` until one is
    /// in flight, input runs dry, or the connection errors.
    fn drive(&mut self, ctx: &ShardCtx, active: &mut bool) -> bool {
        while self.inflight.is_none() && !self.close_after_flush {
            if self.proto == Proto::Undecided {
                let skip = self
                    .buf
                    .iter()
                    .take_while(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
                    .count();
                self.buf.drain(..skip);
                match self.buf.first() {
                    None => return true,
                    Some(b'{') => self.proto = Proto::JsonLines,
                    Some(_) => self.proto = Proto::Http,
                }
            }
            match self.proto {
                Proto::Undecided => unreachable!("sniffed above"),
                Proto::JsonLines => {
                    let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
                        if self.buf.len() > ctx.config.max_line {
                            self.push_json_line(&error_response(
                                &Value::Null,
                                &ServeError::new(
                                    ErrorCode::BadRequest,
                                    format!(
                                        "request line exceeds the {} byte limit",
                                        ctx.config.max_line
                                    ),
                                ),
                            ));
                            self.buf.clear();
                            self.close_after_flush = true;
                            *active = true;
                        }
                        return true;
                    };
                    let line: Vec<u8> = self.buf.drain(..=nl).collect();
                    let mut line = &line[..line.len() - 1];
                    if line.last() == Some(&b'\r') {
                        line = &line[..line.len() - 1];
                    }
                    // The legacy reader's `lines()` errors out on
                    // invalid UTF-8 and drops the connection; match it.
                    let Ok(text) = std::str::from_utf8(line) else {
                        return false;
                    };
                    if text.trim().is_empty() {
                        continue;
                    }
                    match ctx.service.submit_line(text) {
                        Submitted::Done(envelope) => {
                            self.push_json_line(&envelope);
                            *active = true;
                        }
                        Submitted::Pending(call) => {
                            self.inflight = Some((call, RespKind::JsonLine));
                        }
                    }
                }
                Proto::Http => {
                    match http::parse(&self.buf, ctx.config.max_header, ctx.config.max_body) {
                        HttpParse::Incomplete => return true,
                        HttpParse::Bad {
                            status,
                            reason,
                            message,
                        } => {
                            let body = http::error_body("bad_request", &message);
                            self.out.extend_from_slice(&http::response(
                                status,
                                reason,
                                "application/json",
                                &body,
                                false,
                                &[],
                            ));
                            self.buf.clear();
                            self.close_after_flush = true;
                            *active = true;
                        }
                        HttpParse::Ok { req, consumed } => {
                            self.buf.drain(..consumed);
                            self.route(ctx, req, active);
                        }
                    }
                }
            }
        }
        true
    }

    /// Dispatches one parsed HTTP request to its route.
    fn route(&mut self, ctx: &ShardCtx, req: http::ParsedRequest, active: &mut bool) {
        let keep_alive = req.keep_alive;
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => {
                let envelope = ctx.service.call(control_request(Op::Health));
                let body = serde_json::to_string(&envelope["result"])
                    .expect("health serialises")
                    .into_bytes();
                self.push_http(200, "OK", "application/json", &body, keep_alive, &[]);
            }
            ("GET", "/metrics") => {
                let body = super::aggregate_prometheus(&ctx.services);
                self.push_http(
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    body.as_bytes(),
                    keep_alive,
                    &[],
                );
            }
            ("GET", "/metrics.json") => {
                let body = serde_json::to_string(&super::aggregate_snapshot(&ctx.services))
                    .expect("snapshot serialises")
                    .into_bytes();
                self.push_http(200, "OK", "application/json", &body, keep_alive, &[]);
            }
            ("GET", "/registry") => {
                let body = serde_json::to_string(&super::registry_snapshot(&ctx.service))
                    .expect("registry serialises")
                    .into_bytes();
                self.push_http(200, "OK", "application/json", &body, keep_alive, &[]);
            }
            ("POST", "/predict") => self.route_predict(ctx, &req.body, keep_alive),
            ("GET", "/debug/traces") => {
                let body = serde_json::to_string(&super::debug::traces_index())
                    .expect("trace index serialises")
                    .into_bytes();
                self.push_http(200, "OK", "application/json", &body, keep_alive, &[]);
            }
            ("GET", path) if path.starts_with("/debug/traces/") => {
                let request_id = &path["/debug/traces/".len()..];
                match super::debug::trace_detail(request_id) {
                    Some(doc) => {
                        let body = serde_json::to_string(&doc)
                            .expect("trace detail serialises")
                            .into_bytes();
                        self.push_http(200, "OK", "application/json", &body, keep_alive, &[]);
                    }
                    None => {
                        let body = http::error_body(
                            "not_found",
                            &format!("no retained trace for request id {request_id:?}"),
                        );
                        self.push_http(
                            404,
                            "Not Found",
                            "application/json",
                            &body,
                            keep_alive,
                            &[],
                        );
                    }
                }
            }
            ("GET", "/debug/dashboard") => {
                let body = super::debug::dashboard_html(&ctx.services);
                self.push_http(
                    200,
                    "OK",
                    "text/html; charset=utf-8",
                    body.as_bytes(),
                    keep_alive,
                    &[],
                );
            }
            (_, "/debug/traces" | "/debug/dashboard") => {
                let body = http::error_body("bad_request", "method not allowed; use GET");
                self.push_http(
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &body,
                    keep_alive,
                    &["Allow: GET"],
                );
            }
            (_, path) if path.starts_with("/debug/traces/") => {
                let body = http::error_body("bad_request", "method not allowed; use GET");
                self.push_http(
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &body,
                    keep_alive,
                    &["Allow: GET"],
                );
            }
            (_, "/health" | "/metrics" | "/metrics.json" | "/registry") => {
                let body = http::error_body("bad_request", "method not allowed; use GET");
                self.push_http(
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &body,
                    keep_alive,
                    &["Allow: GET"],
                );
            }
            (_, "/predict") => {
                let body = http::error_body("bad_request", "method not allowed; use POST");
                self.push_http(
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &body,
                    keep_alive,
                    &["Allow: POST"],
                );
            }
            (_, path) => {
                let body = http::error_body("bad_request", &format!("no such route: {path}"));
                self.push_http(404, "Not Found", "application/json", &body, keep_alive, &[]);
            }
        }
        *active = true;
    }

    /// `POST /predict`: the body is the same JSON object the line
    /// protocol takes (`op` defaults to `predict`), submitted through
    /// the identical [`crate::Service::submit_line`] path so payloads
    /// stay bit-identical across protocols.
    fn route_predict(&mut self, ctx: &ShardCtx, body: &[u8], keep_alive: bool) {
        let Ok(text) = std::str::from_utf8(body) else {
            let body = http::error_body("bad_request", "request body is not valid UTF-8");
            self.push_http(
                400,
                "Bad Request",
                "application/json",
                &body,
                keep_alive,
                &[],
            );
            return;
        };
        let line = match serde_json::from_str::<Value>(text) {
            Err(_) => text.to_owned(), // submit_line reports malformed JSON
            Ok(Value::Object(mut map)) => match map.get("op").and_then(Value::as_str) {
                None if map.get("op").is_none() => {
                    map.insert("op", Value::String("predict".into()));
                    serde_json::to_string(&Value::Object(map)).expect("object serialises")
                }
                Some("predict") => text.to_owned(),
                _ => {
                    let body = http::error_body(
                        "bad_request",
                        "POST /predict only accepts op \"predict\"",
                    );
                    self.push_http(
                        400,
                        "Bad Request",
                        "application/json",
                        &body,
                        keep_alive,
                        &[],
                    );
                    return;
                }
            },
            Ok(_) => text.to_owned(), // submit_line reports the non-object
        };
        match ctx.service.submit_line(&line) {
            Submitted::Done(envelope) => {
                self.encode_envelope(&envelope, RespKind::Http { keep_alive })
            }
            Submitted::Pending(call) => {
                self.inflight = Some((call, RespKind::Http { keep_alive }));
            }
        }
    }

    /// Encodes a resolved response envelope for its protocol.
    fn encode_envelope(&mut self, envelope: &Value, kind: RespKind) {
        match kind {
            RespKind::JsonLine => self.push_json_line(envelope),
            RespKind::Http { keep_alive } => {
                let (status, reason, extra) = envelope_status(envelope);
                let body = serde_json::to_string(envelope)
                    .expect("envelope serialises")
                    .into_bytes();
                self.push_http(status, reason, "application/json", &body, keep_alive, extra);
            }
        }
    }

    fn push_json_line(&mut self, envelope: &Value) {
        let line = serde_json::to_string(envelope).expect("envelope serialises");
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }

    fn push_http(
        &mut self,
        status: u16,
        reason: &str,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
        extra: &[&str],
    ) {
        self.out.extend_from_slice(&http::response(
            status,
            reason,
            content_type,
            body,
            keep_alive,
            extra,
        ));
        if !keep_alive {
            self.close_after_flush = true;
        }
    }
}

/// A synthetic control-plane request with a null id.
fn control_request(op: Op) -> Request {
    Request {
        id: Value::Null,
        op,
        model: None,
        netlist: None,
        deadline_ms: None,
        debug: false,
    }
}

/// Maps a response envelope onto an HTTP status line, with
/// `Retry-After` on shedding.
fn envelope_status(envelope: &Value) -> (u16, &'static str, &'static [&'static str]) {
    if envelope["ok"].as_bool() == Some(true) {
        return (200, "OK", &[]);
    }
    match envelope["error"]["code"].as_str() {
        Some("bad_request") | Some("invalid_netlist") => (400, "Bad Request", &[]),
        Some("unknown_model") => (404, "Not Found", &[]),
        Some("overloaded") => (503, "Service Unavailable", &["Retry-After: 1"]),
        Some("deadline_exceeded") => (504, "Gateway Timeout", &[]),
        _ => (500, "Internal Server Error", &[]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn status_mapping_covers_every_error_code() {
        let ok = json!({"ok": true});
        assert_eq!(envelope_status(&ok).0, 200);
        for (code, status) in [
            ("bad_request", 400),
            ("invalid_netlist", 400),
            ("unknown_model", 404),
            ("overloaded", 503),
            ("deadline_exceeded", 504),
            ("internal", 500),
        ] {
            let envelope = json!({"ok": false, "error": {"code": code, "message": "m"}});
            assert_eq!(envelope_status(&envelope).0, status, "{code}");
        }
        let (status, _, extra) =
            envelope_status(&json!({"ok": false, "error": {"code": "overloaded", "message": "m"}}));
        assert_eq!(status, 503);
        assert_eq!(extra, ["Retry-After: 1"]);
    }
}
