//! Sharded evented network front end.
//!
//! The [`Gateway`] binds one listener and runs N thread-per-core
//! shards. An acceptor thread assigns incoming connections round-robin;
//! each shard owns a private [`Service`] (its own worker pool, LRU
//! prediction cache, metrics registry, and drift monitor) over the
//! shared [`ModelRegistry`], and runs a readiness loop over its
//! nonblocking sockets — no thread per connection, so tens of thousands
//! of keep-alive connections cost two threads per shard plus the
//! acceptor.
//!
//! Every connection speaks either HTTP/1.1 (`POST /predict`,
//! `GET /health|/metrics|/metrics.json|/registry`, plus the live ops
//! surface `GET /debug/traces[/<req-id>]|/debug/dashboard`) or the
//! legacy JSON-lines protocol; the first non-whitespace byte decides
//! (`{` can never start an HTTP method). Both protocols funnel into the
//! same
//! [`Service::submit_line`] path, so response payloads are bit-identical
//! across protocols and shard counts.
//!
//! Load shedding is per shard: when a shard's bounded queue is full the
//! service answers `overloaded`, which the HTTP encoding maps to
//! `503` + `Retry-After: 1`. A `reload` arriving on any shard refreshes
//! every sibling's cache and drift baseline through
//! [`Service::set_reload_hook`], so no shard serves stale predictions
//! after a weight swap.

mod conn;
mod debug;
mod http;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::{json, Value};

use crate::protocol::Op;
use crate::registry::ModelRegistry;
use crate::service::{Service, ServiceConfig};
use conn::Conn;

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Shard (event loop) count; `0` uses the machine's available
    /// parallelism.
    pub shards: usize,
    /// Per-shard service configuration: each shard gets its own worker
    /// pool, bounded queue, and cache of exactly this shape.
    pub service: ServiceConfig,
    /// Largest accepted HTTP head (request line + headers); beyond it
    /// the request is answered `431` and the connection closed.
    pub max_header: usize,
    /// Largest accepted HTTP body (`Content-Length`); beyond it `413`.
    pub max_body: usize,
    /// Largest accepted JSON-lines request line; beyond it a
    /// `bad_request` error line, then the connection closes.
    pub max_line: usize,
    /// How long a partially-received request may sit without progress
    /// before the connection is timed out (`408` / `deadline_exceeded`).
    pub read_deadline: Duration,
    /// How long a fully-idle keep-alive connection is retained.
    pub idle_deadline: Duration,
    /// Shard event-loop pacing when a tick makes no progress.
    pub backoff: BackoffConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            service: ServiceConfig::default(),
            max_header: 16 * 1024,
            max_body: 4 * 1024 * 1024,
            max_line: 4 * 1024 * 1024,
            read_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(60),
            backoff: BackoffConfig::default(),
        }
    }
}

/// Pacing of a shard's event loop across consecutive no-progress ticks:
/// first spin (yield only — a byte or worker reply often lands within a
/// round or two), then a short fixed nap while any request is in flight
/// (a reply is imminent, latency matters), and an exponentially
/// escalating nap up to `idle_nap` when every connection is quiescent
/// (only keep-alives are parked, wake latency is cheap).
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// No-progress rounds served with `yield_now` before napping.
    pub spin_rounds: u32,
    /// Nap while any request is in flight; also the escalation base.
    pub nap: Duration,
    /// Ceiling of the escalating nap when fully idle.
    pub idle_nap: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            spin_rounds: 2,
            nap: Duration::from_micros(10),
            idle_nap: Duration::from_millis(1),
        }
    }
}

/// Pause before the next tick after `idle_rounds` consecutive
/// no-progress rounds (`idle_rounds` starts at 1 on the first such
/// round): `None` while in the spin phase, the fixed short nap while
/// `inflight` (never escalates — a worker reply is imminent), and a
/// doubling nap capped at `idle_nap` when fully idle.
pub(crate) fn backoff_nap(
    cfg: &BackoffConfig,
    idle_rounds: u32,
    inflight: bool,
) -> Option<Duration> {
    if idle_rounds <= cfg.spin_rounds {
        return None;
    }
    if inflight {
        return Some(cfg.nap.min(cfg.idle_nap));
    }
    let doublings = (idle_rounds - cfg.spin_rounds - 1).min(20);
    Some(cfg.nap.saturating_mul(1 << doublings).min(cfg.idle_nap))
}

/// Everything a shard's event loop needs.
pub(crate) struct ShardCtx {
    /// This shard's service.
    pub(crate) service: Arc<Service>,
    /// Every shard's service, for aggregated `/metrics` rendering.
    pub(crate) services: Arc<Vec<Arc<Service>>>,
    pub(crate) config: Arc<GatewayConfig>,
}

/// A bound, not-yet-running gateway.
pub struct Gateway {
    listener: TcpListener,
    services: Arc<Vec<Arc<Service>>>,
    config: Arc<GatewayConfig>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("shards", &self.services.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Binds `addr` and builds one [`Service`] per shard over the shared
    /// `registry`, wiring reload hooks so a `reload` on any shard
    /// refreshes every sibling's cache and drift baseline.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(
        addr: &str,
        registry: Arc<ModelRegistry>,
        config: GatewayConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let shards = if config.shards == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.shards
        };
        let services: Vec<Arc<Service>> = (0..shards)
            .map(|i| {
                // Stamp each service with its shard id so trace-store
                // span contexts and `/debug` payloads can attribute
                // requests to the shard that served them.
                let mut service_config = config.service.clone();
                service_config.shard = Some(u32::try_from(i).unwrap_or(u32::MAX));
                Arc::new(Service::new(registry.clone(), service_config))
            })
            .collect();
        for (i, service) in services.iter().enumerate() {
            // Weak siblings: the hook must not keep a reference cycle
            // alive through the services it refreshes.
            let siblings: Vec<Weak<Service>> = services
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, s)| Arc::downgrade(s))
                .collect();
            service.set_reload_hook(move || {
                for sibling in &siblings {
                    if let Some(s) = sibling.upgrade() {
                        s.refresh_after_reload();
                    }
                }
            });
        }
        Ok(Self {
            listener,
            services: Arc::new(services),
            config: Arc::new(config),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (not expected after a
    /// successful bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Number of shards this gateway runs.
    pub fn shard_count(&self) -> usize {
        self.services.len()
    }

    /// Starts the acceptor and shard threads, returning a handle for
    /// shutdown and per-shard introspection.
    pub fn spawn(self) -> GatewayHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(self.services.len() + 1);
        let mut senders = Vec::with_capacity(self.services.len());
        for (i, service) in self.services.iter().enumerate() {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let ctx = ShardCtx {
                service: service.clone(),
                services: self.services.clone(),
                config: self.config.clone(),
            };
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gateway-shard-{i}"))
                    .spawn(move || shard_loop(&rx, &ctx, &stop))
                    .expect("spawn shard thread"),
            );
        }
        let listener = self.listener;
        let accept_stop = stop.clone();
        threads.push(
            std::thread::Builder::new()
                .name("gateway-accept".into())
                .spawn(move || {
                    let mut next = 0_usize;
                    for incoming in listener.incoming() {
                        if accept_stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        // Accept-time round-robin pins the connection to
                        // one shard for its whole life.
                        if senders[next % senders.len()].send(stream).is_err() {
                            break;
                        }
                        next = next.wrapping_add(1);
                    }
                    // Dropping the senders lets idle shards observe the
                    // disconnect and exit.
                })
                .expect("spawn acceptor thread"),
        );
        GatewayHandle {
            addr,
            stop,
            services: self.services,
            threads,
        }
    }
}

/// Handle to a running gateway; dropping it (or calling
/// [`GatewayHandle::shutdown`]) stops every thread.
pub struct GatewayHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    services: Arc<Vec<Arc<Service>>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for GatewayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayHandle")
            .field("addr", &self.addr)
            .field("shards", &self.services.len())
            .finish_non_exhaustive()
    }
}

impl GatewayHandle {
    /// Address the gateway listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-shard services, in shard order (tests use these to check
    /// per-shard counters against aggregate totals).
    pub fn services(&self) -> &[Arc<Service>] {
        &self.services
    }

    /// Stops the acceptor and every shard, joining their threads. Open
    /// connections are dropped.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so a blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for GatewayHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop_all();
        }
    }
}

/// One shard's event loop: drain newly assigned connections, tick every
/// live connection, and sleep briefly only when nothing moved.
fn shard_loop(rx: &Receiver<TcpStream>, ctx: &ShardCtx, stop: &AtomicBool) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_rounds: u32 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if conns.is_empty() {
            // Nothing to tick: park (briefly, so `stop` stays
            // observable) until the acceptor assigns a connection.
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(stream) => conns.push(Conn::new(stream)),
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
        }
        let mut progress = false;
        conns.retain_mut(|conn| conn.tick(ctx, &mut progress));
        if progress {
            idle_rounds = 0;
        } else {
            idle_rounds = idle_rounds.saturating_add(1);
            let inflight = conns.iter().any(Conn::has_inflight);
            match backoff_nap(&ctx.config.backoff, idle_rounds, inflight) {
                None => std::thread::yield_now(),
                Some(nap) => std::thread::sleep(nap),
            }
        }
    }
}

/// Aggregated Prometheus exposition: shard 0's families keep their
/// `# TYPE` lines; later shards contribute sample lines only (every
/// sample carries its `shard` label), and the process-global registry
/// is appended once.
pub(crate) fn aggregate_prometheus(services: &[Arc<Service>]) -> String {
    let mut out = String::new();
    for (i, service) in services.iter().enumerate() {
        let text = service.metrics().render_shard(service.cache(), i);
        if i == 0 {
            out.push_str(&text);
        } else {
            for line in text.lines() {
                if !line.starts_with('#') {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
    }
    out.push_str(&paragraph_obs::global().render_prometheus());
    out
}

/// Aggregated JSON snapshot: per-shard snapshots plus summed totals
/// (per-op requests/errors, bad lines, queue depth, cache counters).
pub(crate) fn aggregate_snapshot(services: &[Arc<Service>]) -> Value {
    let shards: Vec<Value> = services
        .iter()
        .map(|s| s.metrics().snapshot(s.cache()))
        .collect();
    let sum_u64 =
        |pick: &dyn Fn(&Value) -> Option<u64>| -> u64 { shards.iter().filter_map(pick).sum() };
    let endpoints: Vec<Value> = Op::ALL
        .iter()
        .map(|&op| {
            let i = op.index();
            json!({
                "op": op.name(),
                "requests": sum_u64(&|s| s["endpoints"][i]["requests"].as_u64()),
                "errors": sum_u64(&|s| s["endpoints"][i]["errors"].as_u64()),
            })
        })
        .collect();
    let requests: u64 = endpoints
        .iter()
        .filter_map(|e| e["requests"].as_u64())
        .sum();
    let errors: u64 = endpoints.iter().filter_map(|e| e["errors"].as_u64()).sum();
    let queue_depth: f64 = shards
        .iter()
        .filter_map(|s| s["queue_depth"].as_f64())
        .sum();
    json!({
        "shard_count": services.len(),
        "totals": {
            "requests": requests,
            "errors": errors,
            "bad_lines": sum_u64(&|s| s["bad_lines"].as_u64()),
            "queue_depth": queue_depth as i64,
            "endpoints": endpoints,
            "cache": {
                "hits": sum_u64(&|s| s["cache"]["hits"].as_u64()),
                "misses": sum_u64(&|s| s["cache"]["misses"].as_u64()),
                "entries": sum_u64(&|s| s["cache"]["entries"].as_u64()),
            },
        },
        "shards": shards,
    })
}

/// The `GET /registry` payload: model keys and ensemble assembly from
/// the shared registry's current snapshot.
pub(crate) fn registry_snapshot(service: &Service) -> Value {
    let snapshot = service.registry().current();
    json!({
        "models": snapshot.keys(),
        "ensemble_members": snapshot.ensemble_members.clone(),
        "ensemble": snapshot.ensemble.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The idle backoff ladder: yield through the spin phase, fixed
    /// short nap while a request is in flight, doubling nap capped at
    /// `idle_nap` when fully idle — and an immediate reset to spinning
    /// once progress clears `idle_rounds`.
    #[test]
    fn backoff_ladder_is_pinned() {
        let cfg = BackoffConfig {
            spin_rounds: 2,
            nap: Duration::from_micros(10),
            idle_nap: Duration::from_micros(160),
        };
        // Spin phase: rounds 1..=spin_rounds yield regardless of state.
        for rounds in 1..=2 {
            assert_eq!(backoff_nap(&cfg, rounds, false), None);
            assert_eq!(backoff_nap(&cfg, rounds, true), None);
        }
        // In flight: the nap never escalates past the base.
        for rounds in 3..40 {
            assert_eq!(
                backoff_nap(&cfg, rounds, true),
                Some(Duration::from_micros(10)),
                "inflight nap must stay fixed at round {rounds}"
            );
        }
        // Fully idle: doubles per round from the base, capped.
        for (rounds, us) in [(3, 10), (4, 20), (5, 40), (6, 80), (7, 160), (8, 160)] {
            assert_eq!(
                backoff_nap(&cfg, rounds, false),
                Some(Duration::from_micros(us)),
                "idle nap ladder broken at round {rounds}"
            );
        }
        // Large round counts must not overflow the doubling shift.
        assert_eq!(
            backoff_nap(&cfg, u32::MAX, false),
            Some(Duration::from_micros(160))
        );
    }

    /// `idle_nap` bounds every nap, even when misconfigured below the
    /// in-flight base nap.
    #[test]
    fn idle_nap_bounds_inflight_nap() {
        let cfg = BackoffConfig {
            spin_rounds: 0,
            nap: Duration::from_micros(500),
            idle_nap: Duration::from_micros(100),
        };
        assert_eq!(backoff_nap(&cfg, 1, true), Some(Duration::from_micros(100)));
        assert_eq!(
            backoff_nap(&cfg, 1, false),
            Some(Duration::from_micros(100))
        );
    }
}
