//! The gateway's live ops surface: `/debug/traces`,
//! `/debug/traces/<req-id>`, and `/debug/dashboard`.
//!
//! The trace endpoints read the process-wide
//! [`paragraph_obs::trace_store`] — one store shared by every shard,
//! each retained trace labelled with the shard that served it — so a
//! single GET sees the whole gateway. The dashboard aggregates the
//! per-shard service registries (rolling latency quantiles, queue
//! depths, batch-size histogram, drift z-scores, per-precision
//! latency) into one self-contained HTML page with no scripts and no
//! external assets: `curl | w3m` works as well as a browser.

use std::fmt::Write as _;
use std::sync::Arc;

use serde_json::{json, Value};

use crate::service::Service;

/// How many retained traces the index and dashboard list (newest
/// first). The full ring stays addressable by request id.
const INDEX_LIMIT: usize = 50;

/// `GET /debug/traces`: store counters plus an index of retained
/// traces, newest first.
pub(crate) fn traces_index() -> Value {
    let store = paragraph_obs::trace_store();
    let counters = store.counters();
    let mut retained_by_reason = serde_json::Map::new();
    for (reason, n) in paragraph_obs::RetainReason::ALL
        .iter()
        .zip(counters.retained.iter())
    {
        retained_by_reason.insert(reason.name(), json!(*n));
    }
    let traces: Vec<Value> = store
        .summaries()
        .iter()
        .take(INDEX_LIMIT)
        .map(|s| {
            let mut stages = serde_json::Map::new();
            for (k, v) in &s.stages {
                stages.insert(k.clone(), json!(*v));
            }
            json!({
                "request_id": s.request_id.clone(),
                "shard": s.shard,
                "op": s.op.clone(),
                "reason": s.reason.name(),
                "ok": s.ok,
                "total_us": s.total_us,
                "completed_ts_us": s.completed_ts_us,
                "stages": Value::Object(stages),
                "span_count": s.span_count as u64,
                "seq": s.seq,
            })
        })
        .collect();
    json!({
        "enabled": paragraph_obs::store_enabled(),
        "epoch_unix_ns": paragraph_obs::epoch_unix_nanos(),
        "counters": {
            "completed": counters.completed,
            "retained": counters.retained_total(),
            "retained_by_reason": Value::Object(retained_by_reason),
            "not_retained": counters.not_retained,
            "dropped_spans": counters.dropped_spans,
            "evicted": counters.evicted,
            "active": counters.active as u64,
            "stored": counters.stored as u64,
        },
        "traces": traces,
    })
}

/// `GET /debug/traces/<req-id>`: the full span tree of one retained
/// trace as a Chrome-trace-compatible object (`traceEvents` +
/// `displayTimeUnit`, loadable in `chrome://tracing` / Perfetto) with
/// the request's metadata as extra top-level keys, which trace viewers
/// ignore. `None` when the id is unknown (expired from the ring or
/// never retained).
pub(crate) fn trace_detail(request_id: &str) -> Option<Value> {
    let trace = paragraph_obs::trace_store().get(request_id)?;
    let rendered = paragraph_obs::render_chrome_trace(&trace.spans);
    let mut doc =
        serde_json::from_str::<Value>(&rendered).expect("rendered chrome trace parses as JSON");
    let mut stages = serde_json::Map::new();
    for (k, v) in &trace.stages {
        stages.insert(k.clone(), json!(*v));
    }
    if let Value::Object(obj) = &mut doc {
        obj.insert("request_id", json!(trace.request_id.clone()));
        obj.insert("shard", json!(trace.shard));
        obj.insert("op", json!(trace.op.clone()));
        obj.insert("reason", json!(trace.reason.name()));
        obj.insert("ok", json!(trace.ok));
        obj.insert("total_us", json!(trace.total_us));
        obj.insert("completed_ts_us", json!(trace.completed_ts_us));
        obj.insert("epoch_unix_ns", json!(paragraph_obs::epoch_unix_nanos()));
        obj.insert("stages", Value::Object(stages));
        obj.insert("dropped_spans", json!(trace.dropped_spans));
    }
    Some(doc)
}

/// `GET /debug/dashboard`: one self-contained HTML page over every
/// shard. Server-rendered from the same snapshots `/metrics.json`
/// serves, so the numbers agree with the machine-readable surface.
pub(crate) fn dashboard_html(services: &[Arc<Service>]) -> String {
    let snapshots: Vec<Value> = services
        .iter()
        .map(|s| s.metrics().snapshot(s.cache()))
        .collect();
    let mut page = String::with_capacity(16 * 1024);
    page.push_str(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>paragraph gateway</title><style>\
         body{font:14px/1.4 monospace;margin:1.5em;background:#fafafa;color:#222}\
         h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.6em;\
         border-bottom:1px solid #ccc;padding-bottom:.2em}\
         table{border-collapse:collapse;margin:.5em 0}\
         th,td{border:1px solid #ccc;padding:.2em .6em;text-align:right}\
         th{background:#eee}td.l,th.l{text-align:left}\
         .bar{background:#69c;display:inline-block;height:.8em}\
         .ok{color:#171}.bad{color:#b11}small{color:#666}\
         </style></head><body>\n",
    );
    let _ = writeln!(
        page,
        "<h1>paragraph gateway</h1>\
         <p><small>{} shard(s) &middot; epoch_unix_ns {} &middot; \
         store {}</small></p>",
        services.len(),
        paragraph_obs::epoch_unix_nanos(),
        if paragraph_obs::store_enabled() {
            "enabled"
        } else {
            "disabled"
        },
    );

    render_latency_section(&mut page, &snapshots);
    render_queue_section(&mut page, services, &snapshots);
    render_batch_section(&mut page, &snapshots);
    render_precision_section(&mut page, &snapshots);
    render_drift_section(&mut page, services);
    render_traces_section(&mut page);

    page.push_str("</body></html>\n");
    page
}

/// Rolling request-latency quantiles per op per shard; ops that served
/// no requests are skipped.
fn render_latency_section(page: &mut String, snapshots: &[Value]) {
    page.push_str(
        "<h2>request latency (rolling)</h2>\
         <table><tr><th class=\"l\">shard</th><th class=\"l\">op</th>\
         <th>requests</th><th>errors</th>\
         <th>p50 &micro;s</th><th>p95 &micro;s</th><th>p99 &micro;s</th></tr>\n",
    );
    for (i, snap) in snapshots.iter().enumerate() {
        let Some(endpoints) = snap["endpoints"].as_array() else {
            continue;
        };
        for e in endpoints {
            if e["requests"].as_u64().unwrap_or(0) == 0 {
                continue;
            }
            let _ = write!(
                page,
                "<tr><td class=\"l\">{i}</td><td class=\"l\">{}</td>\
                 <td>{}</td><td>{}</td>",
                escape(e["op"].as_str().unwrap_or("?")),
                e["requests"].as_u64().unwrap_or(0),
                e["errors"].as_u64().unwrap_or(0),
            );
            push_quantile_cells(page, &e["latency_rolling"]);
            page.push_str("</tr>\n");
        }
    }
    page.push_str("</table>\n");
}

/// Queue depth, uptime, and cache hit rate per shard.
fn render_queue_section(page: &mut String, services: &[Arc<Service>], snapshots: &[Value]) {
    page.push_str(
        "<h2>queues &amp; caches</h2>\
         <table><tr><th class=\"l\">shard</th><th>queue depth</th>\
         <th>bad lines</th><th>cache hits</th><th>cache misses</th>\
         <th>hit rate</th><th>uptime ms</th></tr>\n",
    );
    for (i, (service, snap)) in services.iter().zip(snapshots).enumerate() {
        let _ = writeln!(
            page,
            "<tr><td class=\"l\">{i}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{:.2}</td><td>{}</td></tr>",
            service.metrics().queue_depth(),
            snap["bad_lines"].as_u64().unwrap_or(0),
            snap["cache"]["hits"].as_u64().unwrap_or(0),
            snap["cache"]["misses"].as_u64().unwrap_or(0),
            snap["cache"]["hit_rate"].as_f64().unwrap_or(0.0),
            snap["uptime_ms"].as_u64().unwrap_or(0),
        );
    }
    page.push_str("</table>\n");
}

/// Batch-size histogram summed across shards, drawn as text bars.
fn render_batch_section(page: &mut String, snapshots: &[Value]) {
    let mut labels: Vec<String> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    for snap in snapshots {
        let Some(buckets) = snap["batching"]["size_buckets"].as_array() else {
            continue;
        };
        for (b, bucket) in buckets.iter().enumerate() {
            if b >= labels.len() {
                let le = bucket["le"]
                    .as_u64()
                    .map_or_else(|| "inf".to_owned(), |v| v.to_string());
                labels.push(le);
                totals.push(0);
            }
            totals[b] += bucket["count"].as_u64().unwrap_or(0);
        }
    }
    let formed: u64 = snapshots
        .iter()
        .filter_map(|s| s["batching"]["batches_formed"].as_u64())
        .sum();
    let admitted: u64 = snapshots
        .iter()
        .filter_map(|s| s["batching"]["window_admitted_jobs"].as_u64())
        .sum();
    let _ = writeln!(
        page,
        "<h2>batch sizes</h2>\
         <p><small>{formed} batches formed &middot; {admitted} jobs \
         admitted by open windows</small></p>\
         <table><tr><th class=\"l\">size &le;</th><th>batches</th>\
         <th class=\"l\"></th></tr>",
    );
    let peak = totals.iter().copied().max().unwrap_or(0).max(1);
    for (le, &count) in labels.iter().zip(&totals) {
        let width = count * 200 / peak;
        let _ = writeln!(
            page,
            "<tr><td class=\"l\">{le}</td><td>{count}</td>\
             <td class=\"l\"><span class=\"bar\" style=\"width:{width}px\"></span></td></tr>",
        );
    }
    page.push_str("</table>\n");
}

/// Per-precision rolling latency per shard (f32/f16/int8), plus the
/// executor/tape split; precisions with no traffic are skipped.
fn render_precision_section(page: &mut String, snapshots: &[Value]) {
    page.push_str(
        "<h2>inference paths</h2>\
         <table><tr><th class=\"l\">shard</th><th class=\"l\">path</th>\
         <th>requests</th>\
         <th>p50 &micro;s</th><th>p95 &micro;s</th><th>p99 &micro;s</th></tr>\n",
    );
    for (i, snap) in snapshots.iter().enumerate() {
        let groups = [
            ("paths", &["executor", "tape"][..]),
            ("precisions", &["f32", "f16", "int8"][..]),
        ];
        for (section, names) in groups {
            for name in names {
                let p = &snap[section][*name];
                if p["requests"].as_u64().unwrap_or(0) == 0 {
                    continue;
                }
                let _ = write!(
                    page,
                    "<tr><td class=\"l\">{i}</td><td class=\"l\">{name}</td><td>{}</td>",
                    p["requests"].as_u64().unwrap_or(0),
                );
                push_quantile_cells(page, &p["latency_rolling"]);
                page.push_str("</tr>\n");
            }
        }
    }
    page.push_str("</table>\n");
}

/// Drift monitor state per shard: OOD fraction and the highest
/// per-feature z-scores.
fn render_drift_section(page: &mut String, services: &[Arc<Service>]) {
    page.push_str(
        "<h2>drift</h2>\
         <table><tr><th class=\"l\">shard</th><th>active</th>\
         <th>ood total</th><th>ood fraction</th>\
         <th class=\"l\">top z-scores</th></tr>\n",
    );
    for (i, service) in services.iter().enumerate() {
        let drift = service.drift();
        let mut z = drift.z_scores();
        z.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<String> = z
            .iter()
            .take(5)
            .filter(|(_, z)| z.is_finite() && *z > 0.0)
            .map(|(name, z)| format!("{} z={z:.2}", escape(name)))
            .collect();
        let _ = writeln!(
            page,
            "<tr><td class=\"l\">{i}</td><td>{}</td><td>{}</td>\
             <td>{:.3}</td><td class=\"l\">{}</td></tr>",
            drift.is_active(),
            drift.ood_requests_total(),
            drift.ood_fraction(),
            if top.is_empty() {
                "&mdash;".to_owned()
            } else {
                top.join(" &middot; ")
            },
        );
    }
    page.push_str("</table>\n");
}

/// Store counters and the most recently retained traces, each linked
/// to its `/debug/traces/<req-id>` span tree.
fn render_traces_section(page: &mut String) {
    let store = paragraph_obs::trace_store();
    let counters = store.counters();
    let by_reason: Vec<String> = paragraph_obs::RetainReason::ALL
        .iter()
        .zip(counters.retained.iter())
        .filter(|(_, &n)| n > 0)
        .map(|(reason, n)| format!("{} {n}", reason.name()))
        .collect();
    let _ = writeln!(
        page,
        "<h2>retained traces</h2>\
         <p><small>{} completed &middot; {} retained ({}) &middot; \
         {} sampled out &middot; {} evicted &middot; {} spans dropped</small></p>",
        counters.completed,
        counters.retained_total(),
        if by_reason.is_empty() {
            "none".to_owned()
        } else {
            by_reason.join(", ")
        },
        counters.not_retained,
        counters.evicted,
        counters.dropped_spans,
    );
    page.push_str(
        "<table><tr><th class=\"l\">request</th><th class=\"l\">shard</th>\
         <th class=\"l\">op</th><th class=\"l\">reason</th><th class=\"l\">ok</th>\
         <th>total &micro;s</th><th>spans</th></tr>\n",
    );
    for s in store.summaries().into_iter().take(INDEX_LIMIT) {
        let shard = s.shard.map_or_else(|| "-".to_owned(), |v| v.to_string());
        let _ = writeln!(
            page,
            "<tr><td class=\"l\"><a href=\"/debug/traces/{id}\">{id}</a></td>\
             <td class=\"l\">{shard}</td><td class=\"l\">{}</td>\
             <td class=\"l\">{}</td>\
             <td class=\"l\"><span class=\"{}\">{}</span></td>\
             <td>{:.1}</td><td>{}</td></tr>",
            escape(&s.op),
            s.reason.name(),
            if s.ok { "ok" } else { "bad" },
            s.ok,
            s.total_us,
            s.span_count,
            id = escape(&s.request_id),
        );
    }
    page.push_str("</table>\n");
}

/// Writes the p50/p95/p99 cells from a `latency_rolling` array as
/// rendered by `Metrics::snapshot` (null until the window has data).
fn push_quantile_cells(page: &mut String, rolling: &Value) {
    for slot in 0..3 {
        match rolling[slot]["latency_us"].as_f64() {
            Some(v) => {
                let _ = write!(page, "<td>{v:.1}</td>");
            }
            None => page.push_str("<td>&mdash;</td>"),
        }
    }
}

/// Minimal HTML escaping for dynamic text (request ids, model keys,
/// feature names).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_neutralises_markup() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(escape("req-12"), "req-12");
    }
}
