//! # paragraph-serve
//!
//! A std-only concurrent inference service for ParaGraph models: load a
//! directory of trained [`paragraph::SavedModel`] snapshots, then answer
//! `predict`/`stats`/`erc` requests over a JSON-lines TCP protocol or
//! through the in-process [`Service`] API.
//!
//! The moving parts:
//!
//! * [`ModelRegistry`] — loads and validates snapshots, assembles
//!   capacitance-range members into a [`paragraph::CapEnsemble`], and
//!   hot-reloads atomically (in-flight requests keep their snapshot).
//! * [`Service`] — a fixed worker pool (`std::thread` + `std::sync::mpsc`)
//!   behind a bounded queue: backpressure via `overloaded` rejections,
//!   per-request deadlines, and per-request panic isolation.
//! * [`PredictionCache`] — LRU cache keyed by model and a content hash of
//!   the flattened netlist; hits serve bit-identical payloads.
//! * [`Metrics`] — atomic counters, fixed-bucket latency histograms,
//!   rolling p50/p95/p99 latency quantiles, queue-depth gauge, and
//!   cache hit rate, served via the `metrics` op.
//! * [`DriftMonitor`] — compares rolling windows of incoming circuit
//!   features against the training baselines stored in each model
//!   artifact; out-of-distribution traffic degrades the `health` op.
//! * [`Server`] — `std::net::TcpListener` front end, one thread per
//!   connection, one JSON response line per request line.
//! * [`Gateway`] — sharded evented front end: N thread-per-core shards,
//!   each with its own [`Service`], speaking HTTP/1.1 keep-alive and
//!   JSON-lines on one port via first-byte protocol sniffing.
//!
//! See `docs/serving.md` in the repository root for the wire protocol.
//!
//! ```
//! use std::sync::Arc;
//! use paragraph_serve::{LoadedModels, ModelRegistry, Service, ServiceConfig};
//!
//! // Empty registry: control-plane ops still work.
//! let registry = Arc::new(ModelRegistry::from_snapshot(LoadedModels::default()));
//! let service = Service::new(registry, ServiceConfig::default());
//! let response = service.handle_line(r#"{"op": "health", "id": 1}"#);
//! assert!(response.contains("\"ok\":true"));
//! ```

#![warn(missing_docs)]

mod cache;
mod drift;
mod gateway;
mod metrics;
mod protocol;
mod registry;
mod server;
mod service;

pub use cache::{fnv1a, PredictionCache};
pub use drift::{DriftConfig, DriftMonitor};
pub use gateway::{BackoffConfig, Gateway, GatewayConfig, GatewayHandle};
pub use metrics::{Metrics, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_US, ROLLING_WINDOW};
pub use protocol::{error_response, ok_response, ErrorCode, Op, Request, ServeError};
pub use registry::{
    LoadedModels, ModelRef, ModelRegistry, RegistryError, ReloadReport, ENSEMBLE_KEY,
};
pub use server::{Server, ServerHandle, DEFAULT_READ_TIMEOUT};
pub use service::{PendingCall, Service, ServiceConfig, Submitted};
