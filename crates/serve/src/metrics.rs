//! Service metrics: per-endpoint request/error counters, fixed-bucket
//! latency histograms, a queue-depth gauge, and cache statistics —
//! all lock-free atomics, rendered either as a JSON object or as
//! Prometheus-style exposition text.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde_json::{json, Value};

use crate::cache::PredictionCache;
use crate::protocol::Op;

/// Upper bounds (microseconds) of the latency histogram buckets; the
/// last bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 7] =
    [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, u64::MAX];

#[derive(Debug, Default)]
struct EndpointMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
}

/// All service counters. Cheap to share behind an `Arc`; every method
/// takes `&self`.
#[derive(Debug)]
pub struct Metrics {
    endpoints: Vec<EndpointMetrics>,
    queue_depth: AtomicI64,
    bad_lines: AtomicU64,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self {
            endpoints: Op::ALL.iter().map(|_| EndpointMetrics::default()).collect(),
            queue_depth: AtomicI64::new(0),
            bad_lines: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Counts a protocol line that never parsed into a request.
    pub fn bad_line(&self) {
        self.bad_lines.fetch_add(1, Ordering::Relaxed);
    }

    /// Lines rejected before reaching any endpoint.
    pub fn bad_lines(&self) -> u64 {
        self.bad_lines.load(Ordering::Relaxed)
    }

    /// Records one finished request.
    pub fn record(&self, op: Op, latency: Duration, ok: bool) {
        let e = &self.endpoints[op.index()];
        e.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            e.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        e.total_us.fetch_add(us, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| us <= ub)
            .expect("last bucket is unbounded");
        e.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Queue-depth gauge: a request entered the queue.
    pub fn queue_entered(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue-depth gauge: a worker picked a request up.
    pub fn queue_left(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently sitting in the queue.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Time since the metrics (service) were created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Structured snapshot of every counter.
    pub fn snapshot(&self, cache: &PredictionCache) -> Value {
        let endpoints: Vec<Value> = Op::ALL
            .iter()
            .map(|&op| {
                let e = &self.endpoints[op.index()];
                let buckets: Vec<Value> = LATENCY_BUCKETS_US
                    .iter()
                    .zip(&e.buckets)
                    .map(|(&ub, count)| {
                        json!({
                            "le_us": if ub == u64::MAX { Value::String("inf".into()) } else { json!(ub) },
                            "count": count.load(Ordering::Relaxed),
                        })
                    })
                    .collect();
                json!({
                    "op": op.name(),
                    "requests": e.requests.load(Ordering::Relaxed),
                    "errors": e.errors.load(Ordering::Relaxed),
                    "total_latency_us": e.total_us.load(Ordering::Relaxed),
                    "latency_buckets": buckets,
                })
            })
            .collect();
        json!({
            "uptime_ms": self.uptime().as_millis() as u64,
            "queue_depth": self.queue_depth(),
            "bad_lines": self.bad_lines(),
            "endpoints": endpoints,
            "cache": {
                "hits": cache.hits(),
                "misses": cache.misses(),
                "hit_rate": cache.hit_rate(),
                "entries": cache.len(),
            },
        })
    }

    /// Prometheus-style exposition text.
    pub fn render(&self, cache: &PredictionCache) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE paragraph_requests_total counter\n");
        for &op in &Op::ALL {
            let e = &self.endpoints[op.index()];
            let _ = writeln!(
                out,
                "paragraph_requests_total{{op=\"{}\"}} {}",
                op.name(),
                e.requests.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE paragraph_errors_total counter\n");
        for &op in &Op::ALL {
            let e = &self.endpoints[op.index()];
            let _ = writeln!(
                out,
                "paragraph_errors_total{{op=\"{}\"}} {}",
                op.name(),
                e.errors.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE paragraph_request_latency_us histogram\n");
        for &op in &Op::ALL {
            let e = &self.endpoints[op.index()];
            let mut cumulative = 0_u64;
            for (&ub, count) in LATENCY_BUCKETS_US.iter().zip(&e.buckets) {
                cumulative += count.load(Ordering::Relaxed);
                let le = if ub == u64::MAX {
                    "+Inf".to_owned()
                } else {
                    ub.to_string()
                };
                let _ = writeln!(
                    out,
                    "paragraph_request_latency_us_bucket{{op=\"{}\",le=\"{}\"}} {}",
                    op.name(),
                    le,
                    cumulative
                );
            }
        }
        let _ = writeln!(out, "# TYPE paragraph_bad_lines_total counter");
        let _ = writeln!(out, "paragraph_bad_lines_total {}", self.bad_lines());
        let _ = writeln!(out, "# TYPE paragraph_queue_depth gauge");
        let _ = writeln!(out, "paragraph_queue_depth {}", self.queue_depth());
        let _ = writeln!(out, "# TYPE paragraph_cache_hits_total counter");
        let _ = writeln!(out, "paragraph_cache_hits_total {}", cache.hits());
        let _ = writeln!(out, "# TYPE paragraph_cache_misses_total counter");
        let _ = writeln!(out, "paragraph_cache_misses_total {}", cache.misses());
        let _ = writeln!(out, "# TYPE paragraph_cache_hit_rate gauge");
        let _ = writeln!(out, "paragraph_cache_hit_rate {}", cache.hit_rate());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fills_buckets_and_counters() {
        let m = Metrics::new();
        m.record(Op::Predict, Duration::from_micros(50), true);
        m.record(Op::Predict, Duration::from_micros(500), false);
        m.record(Op::Stats, Duration::from_secs(20), true); // +Inf bucket
        let cache = PredictionCache::new(4);
        let snap = m.snapshot(&cache);
        let predict = &snap["endpoints"][Op::Predict.index()];
        assert_eq!(predict["requests"].as_u64(), Some(2));
        assert_eq!(predict["errors"].as_u64(), Some(1));
        assert_eq!(predict["latency_buckets"][0]["count"].as_u64(), Some(1));
        assert_eq!(predict["latency_buckets"][1]["count"].as_u64(), Some(1));
        let stats = &snap["endpoints"][Op::Stats.index()];
        let last = LATENCY_BUCKETS_US.len() - 1;
        assert_eq!(stats["latency_buckets"][last]["count"].as_u64(), Some(1));
    }

    #[test]
    fn queue_gauge_tracks_depth() {
        let m = Metrics::new();
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        assert_eq!(m.queue_depth(), 1);
    }

    #[test]
    fn render_exposes_all_families() {
        let m = Metrics::new();
        m.record(Op::Health, Duration::from_micros(10), true);
        let cache = PredictionCache::new(4);
        let text = m.render(&cache);
        for family in [
            "paragraph_requests_total",
            "paragraph_errors_total",
            "paragraph_request_latency_us_bucket",
            "paragraph_queue_depth",
            "paragraph_cache_hits_total",
            "paragraph_cache_hit_rate",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("le=\"+Inf\""));
    }
}
