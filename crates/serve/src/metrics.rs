//! Service metrics: per-endpoint request/error counters, fixed-bucket
//! latency histograms, a queue-depth gauge, and cache statistics.
//!
//! Since the observability PR everything is backed by a
//! [`paragraph_obs::Registry`] — the same metric types the training and
//! runtime layers record into — so the `metrics` endpoint renders the
//! service's own registry *and* the process-wide
//! [`paragraph_obs::global`] registry (training throughput, pool queue
//! depth, backward-op timings) through one code path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use paragraph_obs::{Counter, Gauge, Histogram, Registry, RollingQuantile, RENDERED_QUANTILES};
use serde_json::{json, Value};

use crate::cache::PredictionCache;
use crate::protocol::Op;

/// Finite upper bounds (microseconds) of the latency histogram buckets;
/// the `+Inf` bucket is implicit, as in Prometheus exposition.
pub const LATENCY_BUCKETS_US: [f64; 6] = [
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
];

/// Observations kept in each per-op rolling latency window; exact
/// p50/p95/p99 are computed over this many most-recent requests.
pub const ROLLING_WINDOW: usize = 512;

/// Finite upper bounds of the `paragraph_serve_batch_size` histogram
/// (jobs per formed predict batch); the `+Inf` bucket is implicit.
pub const BATCH_SIZE_BUCKETS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Handles for one endpoint's families, resolved once at construction.
#[derive(Debug)]
struct EndpointMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    latency: Arc<Histogram>,
    rolling: Arc<RollingQuantile>,
}

/// Counters and rolling latency windows for one inference path
/// (compiled executor or autograd tape).
#[derive(Debug)]
struct PathMetrics {
    requests: Arc<Counter>,
    rolling: Arc<RollingQuantile>,
}

/// Names of the compiled-path precisions tracked by the per-precision
/// serving metrics, in label order.
pub const PRECISION_NAMES: [&str; 3] = ["f32", "f16", "int8"];

/// All service counters. Cheap to share behind an `Arc`; every method
/// takes `&self`.
///
/// Each `Metrics` owns its own [`Registry`] so concurrent services (and
/// tests) never see each other's counts; the process-wide
/// [`paragraph_obs::global`] registry is merged in at render time only.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    endpoints: Vec<EndpointMetrics>,
    executor_path: PathMetrics,
    tape_path: PathMetrics,
    precisions: Vec<PathMetrics>,
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    batches_formed: Arc<Counter>,
    window_admitted: Arc<Counter>,
    bad_lines: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_hit_rate: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        let registry = Registry::new();
        let endpoints = Op::ALL
            .iter()
            .map(|op| EndpointMetrics {
                requests: registry.counter("paragraph_requests_total", &[("op", op.name())]),
                errors: registry.counter("paragraph_errors_total", &[("op", op.name())]),
                latency: registry.histogram(
                    "paragraph_request_latency_us",
                    &[("op", op.name())],
                    &LATENCY_BUCKETS_US,
                ),
                rolling: registry.rolling(
                    "paragraph_request_latency_rolling_us",
                    &[("op", op.name())],
                    ROLLING_WINDOW,
                ),
            })
            .collect();
        let path_metrics = |name: &'static str, path: &'static str| PathMetrics {
            requests: registry.counter(name, &[]),
            rolling: registry.rolling(
                "paragraph_serve_predict_path_latency_us",
                &[("path", path)],
                ROLLING_WINDOW,
            ),
        };
        let precisions = PRECISION_NAMES
            .iter()
            .map(|&p| PathMetrics {
                requests: registry.counter(
                    "paragraph_serve_precision_requests_total",
                    &[("precision", p)],
                ),
                rolling: registry.rolling(
                    "paragraph_serve_precision_latency_us",
                    &[("precision", p)],
                    ROLLING_WINDOW,
                ),
            })
            .collect();
        Self {
            endpoints,
            executor_path: path_metrics("paragraph_serve_executor_requests_total", "executor"),
            tape_path: path_metrics("paragraph_serve_tape_requests_total", "tape"),
            precisions,
            queue_depth: registry.gauge("paragraph_queue_depth", &[]),
            batch_size: registry.histogram("paragraph_serve_batch_size", &[], &BATCH_SIZE_BUCKETS),
            batches_formed: registry.counter("paragraph_serve_batches_formed_total", &[]),
            window_admitted: registry.counter("paragraph_serve_window_admitted_jobs_total", &[]),
            bad_lines: registry.counter("paragraph_bad_lines_total", &[]),
            cache_hits: registry.counter("paragraph_cache_hits_total", &[]),
            cache_misses: registry.counter("paragraph_cache_misses_total", &[]),
            cache_hit_rate: registry.gauge("paragraph_cache_hit_rate", &[]),
            cache_entries: registry.gauge("paragraph_cache_entries", &[]),
            registry,
            started: Instant::now(),
        }
    }

    /// Counts a protocol line that never parsed into a request.
    pub fn bad_line(&self) {
        self.bad_lines.inc();
    }

    /// Lines rejected before reaching any endpoint.
    pub fn bad_lines(&self) -> u64 {
        self.bad_lines.get()
    }

    /// Records one finished request.
    pub fn record(&self, op: Op, latency: Duration, ok: bool) {
        let e = &self.endpoints[op.index()];
        e.requests.inc();
        if !ok {
            e.errors.inc();
        }
        let us = latency.as_secs_f64() * 1e6;
        e.latency.observe(us);
        e.rolling.observe(us);
    }

    /// Records which inference path (compiled executor vs autograd
    /// tape) served a predict group, with its end-to-end latency.
    /// Cache hits never reach this — only groups that ran inference.
    pub fn record_path(&self, executor: bool, latency: Duration) {
        let p = if executor {
            &self.executor_path
        } else {
            &self.tape_path
        };
        p.requests.inc();
        p.rolling.observe(latency.as_secs_f64() * 1e6);
    }

    /// Records the numeric precision (`f32`/`f16`/`int8`) a predict
    /// group's inference ran at, with its end-to-end latency. Unknown
    /// names are ignored (forward compatibility with new tiers).
    pub fn record_precision(&self, precision: &str, latency: Duration) {
        let Some(i) = PRECISION_NAMES.iter().position(|&p| p == precision) else {
            return;
        };
        let p = &self.precisions[i];
        p.requests.inc();
        p.rolling.observe(latency.as_secs_f64() * 1e6);
    }

    /// Requests served at the given precision so far (0 for unknown
    /// names).
    pub fn precision_requests(&self, precision: &str) -> u64 {
        PRECISION_NAMES
            .iter()
            .position(|&p| p == precision)
            .map(|i| self.precisions[i].requests.get())
            .unwrap_or(0)
    }

    /// Records one formed predict batch: `jobs` requests answered by a
    /// single forward pass (1 = an unbatched lone job). Feeds the
    /// `paragraph_serve_batch_size` histogram and the
    /// `paragraph_serve_batches_formed_total` counter.
    pub fn record_batch(&self, jobs: usize) {
        self.batches_formed.inc();
        self.batch_size.observe(jobs as f64);
    }

    /// Records jobs admitted while an admission window was held open
    /// (i.e. beyond the instantaneous queue drain) — the window's
    /// occupancy contribution.
    pub fn window_admitted(&self, jobs: u64) {
        self.window_admitted.add(jobs);
    }

    /// Predict batches formed so far (every forward pass counts once).
    pub fn batches_formed(&self) -> u64 {
        self.batches_formed.get()
    }

    /// Jobs admitted by open admission windows so far.
    pub fn window_admitted_total(&self) -> u64 {
        self.window_admitted.get()
    }

    /// Requests served by the compiled executor path so far.
    pub fn executor_requests(&self) -> u64 {
        self.executor_path.requests.get()
    }

    /// Requests served by the autograd tape path so far.
    pub fn tape_requests(&self) -> u64 {
        self.tape_path.requests.get()
    }

    /// The service's own registry; the drift monitor and slow-request
    /// counter register their families here so one render covers them.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Queue-depth gauge: a request entered the queue.
    pub fn queue_entered(&self) {
        self.queue_depth.add(1.0);
    }

    /// Queue-depth gauge: a worker picked a request up.
    pub fn queue_left(&self) {
        self.queue_depth.sub(1.0);
    }

    /// Requests currently sitting in the queue.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.get() as i64
    }

    /// Time since the metrics (service) were created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Copies the cache's own counters into the registry so renders and
    /// snapshots see current values.
    fn sync_cache(&self, cache: &PredictionCache) {
        self.cache_hits.store(cache.hits());
        self.cache_misses.store(cache.misses());
        self.cache_hit_rate.set(cache.hit_rate());
        self.cache_entries.set(cache.len() as f64);
    }

    /// Structured snapshot of every counter.
    pub fn snapshot(&self, cache: &PredictionCache) -> Value {
        self.sync_cache(cache);
        let endpoints: Vec<Value> = Op::ALL
            .iter()
            .map(|&op| {
                let e = &self.endpoints[op.index()];
                let counts = e.latency.bucket_counts();
                let buckets: Vec<Value> = e
                    .latency
                    .bounds()
                    .iter()
                    .map(|&ub| json!(ub as u64))
                    .chain(std::iter::once(Value::String("inf".into())))
                    .zip(&counts)
                    .map(|(le, &count)| json!({ "le_us": le, "count": count }))
                    .collect();
                let qs = e.rolling.quantiles(&RENDERED_QUANTILES);
                let rolling: Vec<Value> = RENDERED_QUANTILES
                    .iter()
                    .zip(&qs)
                    .map(|(&q, &v)| {
                        let value = if v.is_finite() { json!(v) } else { Value::Null };
                        json!({ "q": q, "latency_us": value })
                    })
                    .collect();
                json!({
                    "op": op.name(),
                    "requests": e.requests.get(),
                    "errors": e.errors.get(),
                    "total_latency_us": e.latency.sum() as u64,
                    "latency_buckets": buckets,
                    "latency_rolling": rolling,
                })
            })
            .collect();
        let path_json = |p: &PathMetrics| {
            let qs = p.rolling.quantiles(&RENDERED_QUANTILES);
            let rolling: Vec<Value> = RENDERED_QUANTILES
                .iter()
                .zip(&qs)
                .map(|(&q, &v)| {
                    let value = if v.is_finite() { json!(v) } else { Value::Null };
                    json!({ "q": q, "latency_us": value })
                })
                .collect();
            json!({ "requests": p.requests.get(), "latency_rolling": rolling })
        };
        let batch_counts = self.batch_size.bucket_counts();
        let batch_size_buckets: Vec<Value> = self
            .batch_size
            .bounds()
            .iter()
            .map(|&ub| json!(ub as u64))
            .chain(std::iter::once(Value::String("inf".into())))
            .zip(&batch_counts)
            .map(|(le, &count)| json!({ "le": le, "count": count }))
            .collect();
        json!({
            "uptime_ms": self.uptime().as_millis() as u64,
            "queue_depth": self.queue_depth(),
            "bad_lines": self.bad_lines(),
            "endpoints": endpoints,
            "paths": {
                "executor": path_json(&self.executor_path),
                "tape": path_json(&self.tape_path),
            },
            "precisions": {
                "f32": path_json(&self.precisions[0]),
                "f16": path_json(&self.precisions[1]),
                "int8": path_json(&self.precisions[2]),
            },
            "batching": {
                "batches_formed": self.batches_formed(),
                "window_admitted_jobs": self.window_admitted_total(),
                "batched_jobs": self.batch_size.sum() as u64,
                "size_buckets": batch_size_buckets,
            },
            "cache": {
                "hits": cache.hits(),
                "misses": cache.misses(),
                "hit_rate": cache.hit_rate(),
                "entries": cache.len(),
            },
        })
    }

    /// Prometheus-style exposition text: this service's registry
    /// followed by the process-wide [`paragraph_obs::global`] registry
    /// (training / runtime / tensor families), both rendered by the same
    /// [`Registry::render_prometheus`] code path.
    pub fn render(&self, cache: &PredictionCache) -> String {
        self.sync_cache(cache);
        let mut out = self.registry.render_prometheus();
        out.push_str(&paragraph_obs::global().render_prometheus());
        out
    }

    /// Prometheus exposition of this service's own registry with every
    /// sample labelled `shard="<n>"`. The sharded gateway concatenates
    /// one of these per shard (and appends the process-global registry
    /// once) so per-shard series stay distinguishable after aggregation.
    pub fn render_shard(&self, cache: &PredictionCache, shard: usize) -> String {
        self.sync_cache(cache);
        let shard = shard.to_string();
        self.registry
            .render_prometheus_labeled(&[("shard", &shard)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fills_buckets_and_counters() {
        let m = Metrics::new();
        m.record(Op::Predict, Duration::from_micros(50), true);
        m.record(Op::Predict, Duration::from_micros(500), false);
        m.record(Op::Stats, Duration::from_secs(20), true); // +Inf bucket
        let cache = PredictionCache::new(4);
        let snap = m.snapshot(&cache);
        let predict = &snap["endpoints"][Op::Predict.index()];
        assert_eq!(predict["requests"].as_u64(), Some(2));
        assert_eq!(predict["errors"].as_u64(), Some(1));
        assert_eq!(predict["latency_buckets"][0]["count"].as_u64(), Some(1));
        assert_eq!(predict["latency_buckets"][1]["count"].as_u64(), Some(1));
        let stats = &snap["endpoints"][Op::Stats.index()];
        // Implicit +Inf slot trails the finite bounds.
        let last = LATENCY_BUCKETS_US.len();
        assert_eq!(
            stats["latency_buckets"][last]["le_us"].as_str(),
            Some("inf")
        );
        assert_eq!(stats["latency_buckets"][last]["count"].as_u64(), Some(1));
    }

    #[test]
    fn queue_gauge_tracks_depth() {
        let m = Metrics::new();
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        assert_eq!(m.queue_depth(), 1);
    }

    #[test]
    fn render_exposes_all_families() {
        let m = Metrics::new();
        m.record(Op::Health, Duration::from_micros(10), true);
        let cache = PredictionCache::new(4);
        let text = m.render(&cache);
        for family in [
            "paragraph_requests_total",
            "paragraph_errors_total",
            "paragraph_request_latency_us_bucket",
            "paragraph_queue_depth",
            "paragraph_cache_hits_total",
            "paragraph_cache_hit_rate",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("le=\"+Inf\""));
    }

    /// Every boundary value lands in its own bucket (le is inclusive)
    /// and the value one past a bound lands in the next bucket.
    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let m = Metrics::new();
        for &ub in &LATENCY_BUCKETS_US {
            m.record(Op::Predict, Duration::from_micros(ub as u64), true);
            m.record(Op::Predict, Duration::from_micros(ub as u64 + 1), true);
        }
        let e = &m.endpoints[Op::Predict.index()];
        let counts = e.latency.bucket_counts();
        // Bucket 0 holds only its own boundary; every later bucket holds
        // its boundary plus the previous bound's +1 overflow; the +Inf
        // slot holds the last bound's +1.
        assert_eq!(counts[0], 1);
        for &c in &counts[1..LATENCY_BUCKETS_US.len()] {
            assert_eq!(c, 2);
        }
        assert_eq!(counts[LATENCY_BUCKETS_US.len()], 1);
        assert_eq!(e.latency.count(), 2 * LATENCY_BUCKETS_US.len() as u64);
    }

    /// Prometheus text-format invariants: one `# TYPE` line per family,
    /// cumulative `_bucket` series ending at `+Inf`, and
    /// `_bucket{le="+Inf"} == _count`.
    #[test]
    fn prometheus_histogram_conformance() {
        let m = Metrics::new();
        m.record(Op::Predict, Duration::from_micros(50), true);
        m.record(Op::Predict, Duration::from_micros(5_000), true);
        m.record(Op::Predict, Duration::from_secs(100), false);
        let cache = PredictionCache::new(4);
        let text = m.render(&cache);

        assert_eq!(
            text.matches("# TYPE paragraph_request_latency_us histogram")
                .count(),
            1
        );
        // Buckets must be cumulative (monotone non-decreasing in le
        // order) for every op label.
        for op in Op::ALL {
            let mut last = 0_u64;
            let mut inf = None;
            for line in text.lines() {
                if line.starts_with("paragraph_request_latency_us_bucket{")
                    && line.contains(&format!("op=\"{}\"", op.name()))
                {
                    let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                    assert!(v >= last, "non-cumulative bucket line: {line}");
                    last = v;
                    if line.contains("le=\"+Inf\"") {
                        inf = Some(v);
                    }
                }
            }
            let count_line = text
                .lines()
                .find(|l| {
                    l.starts_with("paragraph_request_latency_us_count{")
                        && l.contains(&format!("op=\"{}\"", op.name()))
                })
                .unwrap_or_else(|| panic!("no _count for {}", op.name()));
            let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(inf, Some(count), "+Inf bucket must equal _count");
        }
        // _sum present for the histogram family.
        assert!(text
            .lines()
            .any(|l| l.starts_with("paragraph_request_latency_us_sum{")));
    }

    /// Label values with quotes, backslashes, and newlines must be
    /// escaped per the exposition format.
    #[test]
    fn prometheus_label_escaping() {
        let m = Metrics::new();
        let c = m
            .registry
            .counter("paragraph_test_total", &[("path", "a\\b\"c\nd")]);
        c.inc();
        let cache = PredictionCache::new(1);
        let text = m.render(&cache);
        assert!(
            text.contains(r#"path="a\\b\"c\nd""#),
            "escaped label missing in:\n{text}"
        );
        assert!(!text.contains("c\nd"), "raw newline leaked into a label");
    }

    /// Per-op rolling quantiles render as a Prometheus summary and
    /// appear in the JSON snapshot.
    #[test]
    fn rolling_quantiles_render_and_snapshot() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record(Op::Predict, Duration::from_micros(us), true);
        }
        let cache = PredictionCache::new(4);
        let text = m.render(&cache);
        assert!(
            text.contains(
                "paragraph_request_latency_rolling_us{op=\"predict\",quantile=\"0.5\"} 50"
            ),
            "missing p50 summary line in:\n{text}"
        );
        assert!(text
            .contains("paragraph_request_latency_rolling_us{op=\"predict\",quantile=\"0.95\"} 95"));
        assert!(text
            .contains("paragraph_request_latency_rolling_us{op=\"predict\",quantile=\"0.99\"} 99"));
        let snap = m.snapshot(&cache);
        let rolling = &snap["endpoints"][Op::Predict.index()]["latency_rolling"];
        assert_eq!(rolling[0]["q"].as_f64(), Some(0.5));
        assert_eq!(rolling[0]["latency_us"].as_f64(), Some(50.0));
        assert_eq!(rolling[2]["latency_us"].as_f64(), Some(99.0));
        // Ops with no traffic render null quantiles, not garbage.
        let idle = &snap["endpoints"][Op::Reload.index()]["latency_rolling"];
        assert!(idle[0]["latency_us"].is_null());
    }

    /// Executor-vs-tape path counters and their rolling windows render
    /// and snapshot independently of the per-op endpoint families.
    #[test]
    fn path_metrics_track_executor_and_tape() {
        let m = Metrics::new();
        m.record_path(true, Duration::from_micros(40));
        m.record_path(true, Duration::from_micros(60));
        m.record_path(false, Duration::from_micros(500));
        assert_eq!(m.executor_requests(), 2);
        assert_eq!(m.tape_requests(), 1);
        let cache = PredictionCache::new(1);
        let text = m.render(&cache);
        assert!(text.contains("paragraph_serve_executor_requests_total"));
        assert!(text.contains("paragraph_serve_tape_requests_total"));
        assert!(
            text.contains(
                "paragraph_serve_predict_path_latency_us{path=\"executor\",quantile=\"0.5\"} 40"
            ),
            "missing executor-path p50 in:\n{text}"
        );
        assert!(
            text.contains(
                "paragraph_serve_predict_path_latency_us{path=\"tape\",quantile=\"0.5\"} 500"
            ),
            "missing tape-path p50 in:\n{text}"
        );
        let snap = m.snapshot(&cache);
        assert_eq!(snap["paths"]["executor"]["requests"].as_u64(), Some(2));
        assert_eq!(snap["paths"]["tape"]["requests"].as_u64(), Some(1));
        assert_eq!(
            snap["paths"]["tape"]["latency_rolling"][0]["latency_us"].as_f64(),
            Some(500.0)
        );
    }

    /// Per-precision request counters and latency windows render under
    /// their `precision` label and appear in the JSON snapshot; unknown
    /// precision names are ignored.
    #[test]
    fn precision_metrics_track_each_tier() {
        let m = Metrics::new();
        m.record_precision("int8", Duration::from_micros(30));
        m.record_precision("int8", Duration::from_micros(50));
        m.record_precision("f32", Duration::from_micros(200));
        m.record_precision("bf16", Duration::from_micros(999)); // unknown: dropped
        assert_eq!(m.precision_requests("int8"), 2);
        assert_eq!(m.precision_requests("f32"), 1);
        assert_eq!(m.precision_requests("f16"), 0);
        assert_eq!(m.precision_requests("bf16"), 0);
        let cache = PredictionCache::new(1);
        let text = m.render(&cache);
        assert!(
            text.contains("paragraph_serve_precision_requests_total{precision=\"int8\"} 2"),
            "missing int8 counter in:\n{text}"
        );
        assert!(
            text.contains(
                "paragraph_serve_precision_latency_us{precision=\"f32\",quantile=\"0.5\"} 200"
            ),
            "missing f32 p50 in:\n{text}"
        );
        let snap = m.snapshot(&cache);
        assert_eq!(snap["precisions"]["int8"]["requests"].as_u64(), Some(2));
        assert_eq!(snap["precisions"]["f16"]["requests"].as_u64(), Some(0));
        assert_eq!(
            snap["precisions"]["f32"]["latency_rolling"][0]["latency_us"].as_f64(),
            Some(200.0)
        );
    }

    /// Batch-size histogram, batches-formed and window-admitted
    /// counters render as Prometheus families and appear in the JSON
    /// snapshot.
    #[test]
    fn batching_metrics_render_and_snapshot() {
        let m = Metrics::new();
        m.record_batch(1);
        m.record_batch(4);
        m.window_admitted(3);
        assert_eq!(m.batches_formed(), 2);
        assert_eq!(m.window_admitted_total(), 3);
        let cache = PredictionCache::new(1);
        let text = m.render(&cache);
        assert!(
            text.contains("paragraph_serve_batch_size_bucket"),
            "missing batch-size histogram in:\n{text}"
        );
        assert!(text.contains("paragraph_serve_batches_formed_total 2"));
        assert!(text.contains("paragraph_serve_window_admitted_jobs_total 3"));
        let snap = m.snapshot(&cache);
        assert_eq!(snap["batching"]["batches_formed"].as_u64(), Some(2));
        assert_eq!(snap["batching"]["window_admitted_jobs"].as_u64(), Some(3));
        assert_eq!(snap["batching"]["batched_jobs"].as_u64(), Some(5));
    }

    /// The render path merges the process-global registry, so training
    /// metrics appear on the serving endpoint.
    #[test]
    fn render_merges_global_registry() {
        paragraph_obs::global()
            .counter("paragraph_render_merge_probe_total", &[])
            .inc();
        let m = Metrics::new();
        let cache = PredictionCache::new(1);
        let text = m.render(&cache);
        assert!(text.contains("paragraph_render_merge_probe_total"));
    }
}
