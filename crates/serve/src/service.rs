//! The in-process service: a fixed worker pool behind a bounded queue,
//! with per-request deadlines, panic isolation, caching, and metrics.
//!
//! [`Service::call`] is the single entry point both for in-process
//! embedders and for the TCP front end ([`crate::server`]). Heavy
//! operations (`predict`, `stats`, `erc`) are executed on the worker
//! pool; control-plane operations (`health`, `metrics`, `reload`) are
//! answered inline so they stay responsive when the queue is full.
//!
//! Every request gets a service-unique ID (`req-<n>`), runs under a
//! `serve_request` span, and can leave one structured event-log record
//! ([`paragraph_obs::Event`]) carrying the per-stage latency breakdown
//! (parse → cache lookup → queue wait → graph build → inference).
//! Clients sending `"debug": true` get the same breakdown attached to
//! the response under `debug`; the `result` payload itself is never
//! perturbed by instrumentation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use paragraph_netlist::{erc_check, parse_spice, write_flat_spice, Circuit};
use paragraph_obs::Counter;
use serde_json::{json, Value};

use crate::cache::{fnv1a, PredictionCache};
use crate::drift::{baseline_from_snapshot, DriftConfig, DriftMonitor};
use crate::metrics::Metrics;
use crate::protocol::{error_response, ok_response, ErrorCode, Op, Request, ServeError};
use crate::registry::{ModelRef, ModelRegistry};

/// Key the workers use to smuggle per-stage timings back to [`Service::call`]
/// on the response envelope; popped before the envelope reaches the client.
const OBS_KEY: &str = "_obs";

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing queued requests (min 1).
    pub workers: usize,
    /// Bounded queue length; requests beyond it are rejected with
    /// `overloaded` (min 1).
    pub queue_capacity: usize,
    /// Prediction cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Deadline applied when a request does not set `deadline_ms`.
    pub default_deadline: Duration,
    /// Honour the `debug_panic` op (tests only).
    pub enable_debug_ops: bool,
    /// How many queued jobs a worker drains per wake-up (min 1). Predict
    /// jobs in the drained batch that resolve to the same model run as
    /// one forward pass over their circuits' block-diagonal graph union.
    pub max_batch: usize,
    /// Continuous micro-batching admission window. When non-zero, a
    /// worker that picked up a predict job with batching headroom keeps
    /// the queue receiver for up to this long, admitting further jobs
    /// into the same batch as they arrive (not just the ones already
    /// queued). The window is clamped per collected job so that queue
    /// wait plus window never spends more than half of any job's
    /// remaining deadline budget. Zero disables the window (drain-only
    /// batching, the pre-window behaviour). Defaults from
    /// `PARAGRAPH_BATCH_WINDOW_US` (microseconds, 0 = off).
    pub batch_window: Duration,
    /// Event-log sampling: log every `n`th successful request (min 1 =
    /// every request). Errors and slow requests are always logged.
    pub event_sample: u64,
    /// Requests at/above this latency count as slow: always event-logged
    /// and counted in `paragraph_serve_slow_requests_total`.
    pub slow_threshold: Duration,
    /// Drift-monitor tunables.
    pub drift: DriftConfig,
    /// Gateway shard this service serves, stamped onto every request's
    /// [`paragraph_obs::SpanContext`] and the retained traces built
    /// from it. `None` for unsharded embedders.
    pub shard: Option<u32>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline: Duration::from_secs(30),
            enable_debug_ops: false,
            max_batch: 8,
            batch_window: batch_window_default(),
            event_sample: 1,
            slow_threshold: Duration::from_millis(500),
            drift: DriftConfig::default(),
            shard: None,
        }
    }
}

/// Admission-window length from `PARAGRAPH_BATCH_WINDOW_US`
/// (microseconds; unset, unparsable, or 0 = window disabled).
fn batch_window_default() -> Duration {
    std::env::var("PARAGRAPH_BATCH_WINDOW_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_micros)
        .unwrap_or(Duration::ZERO)
}

/// Process-global request-id counter. Ids must be unique across every
/// service in the process — the sharded gateway runs one service per
/// shard but exposes a single id space, and the trace store keys
/// retained traces on the id.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(0);

struct Job {
    request: Request,
    request_id: String,
    deadline: Instant,
    enqueued: Instant,
    reply: SyncSender<Value>,
    /// Span-routing context carried with the job so worker-side spans
    /// land in the request's trace; `None` when the store is off.
    ctx: Option<paragraph_obs::SpanContext>,
}

/// Everything [`Service::finalize`] needs once the worker's reply
/// arrives: the request identity plus the timestamps taken at
/// submission.
#[derive(Debug)]
struct CallCtx {
    id: Value,
    op: Op,
    debug: bool,
    parse_us: f64,
    request_id: String,
    started: Instant,
}

/// A data-plane request that has been queued but not yet answered.
/// Obtain one from [`Service::submit`] / [`Service::submit_line`];
/// resolve it with [`Service::poll`] (non-blocking) or
/// [`Service::wait`] (blocking). Dropping it abandons the request —
/// the worker's reply is discarded and no metrics are recorded.
#[derive(Debug)]
pub struct PendingCall {
    rx: Receiver<Value>,
    ctx: CallCtx,
}

/// Outcome of submitting a request without blocking.
#[derive(Debug)]
pub enum Submitted {
    /// Answered inline: control-plane ops, parse errors, and queue
    /// rejections (`overloaded`). Metrics are already recorded.
    Done(Value),
    /// Queued to the worker pool; resolve via [`Service::poll`] or
    /// [`Service::wait`].
    Pending(PendingCall),
}

/// The concurrent inference service.
pub struct Service {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    cache: Arc<PredictionCache>,
    drift: Arc<DriftMonitor>,
    config: ServiceConfig,
    jobs: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Successful requests seen, for event-log sampling.
    ok_requests: AtomicU64,
    slow_requests: Arc<Counter>,
    /// Invoked after a successful `reload` refreshed this service, so an
    /// embedder (the sharded gateway) can refresh sibling services that
    /// share the same registry.
    reload_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.workers.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts the worker pool over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let metrics = Arc::new(Metrics::new());
        let cache = Arc::new(PredictionCache::new(config.cache_capacity));
        let drift = Arc::new(DriftMonitor::new(metrics.registry(), config.drift.clone()));
        drift.set_baseline(
            metrics.registry(),
            baseline_from_snapshot(&registry.current()),
        );
        let slow_requests = metrics
            .registry()
            .counter("paragraph_serve_slow_requests_total", &[]);
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let registry = registry.clone();
                let cache = cache.clone();
                let metrics = metrics.clone();
                let drift = drift.clone();
                let debug_ops = config.enable_debug_ops;
                let max_batch = config.max_batch.max(1);
                let batch_window = config.batch_window;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &rx,
                            &registry,
                            &cache,
                            &metrics,
                            &drift,
                            debug_ops,
                            max_batch,
                            batch_window,
                        )
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self {
            registry,
            metrics,
            cache,
            drift,
            config,
            jobs: Some(tx),
            workers: handles,
            ok_requests: AtomicU64::new(0),
            slow_requests,
            reload_hook: Mutex::new(None),
        }
    }

    /// The drift monitor (for health checks and tests).
    pub fn drift(&self) -> &Arc<DriftMonitor> {
        &self.drift
    }

    /// The registry backing this service.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The prediction cache.
    pub fn cache(&self) -> &Arc<PredictionCache> {
        &self.cache
    }

    /// Handles one raw protocol line, returning the response rendered as
    /// one compact JSON line (without trailing newline).
    pub fn handle_line(&self, line: &str) -> String {
        let response = match self.submit_line(line) {
            Submitted::Done(response) => response,
            Submitted::Pending(call) => self.wait(call),
        };
        serde_json::to_string(&response).expect("response serialises")
    }

    /// Executes one parsed request and returns the response envelope.
    pub fn call(&self, request: Request) -> Value {
        match self.submit_with_parse(request, 0.0) {
            Submitted::Done(response) => response,
            Submitted::Pending(call) => self.wait(call),
        }
    }

    /// Submits one raw protocol line without blocking on the worker
    /// pool. Parse failures and control-plane ops resolve to
    /// [`Submitted::Done`] immediately; data-plane ops come back as
    /// [`Submitted::Pending`] unless the queue rejected them.
    pub fn submit_line(&self, line: &str) -> Submitted {
        let parse_started = Instant::now();
        match Request::parse(line) {
            Ok(request) => {
                let parse_us = parse_started.elapsed().as_secs_f64() * 1e6;
                self.submit_with_parse(request, parse_us)
            }
            Err(err) => {
                // Salvage the id for the error envelope when the line was
                // at least a JSON object.
                let id = serde_json::from_str::<Value>(line)
                    .ok()
                    .and_then(|v| v.get("id").cloned())
                    .unwrap_or(Value::Null);
                self.metrics.bad_line();
                Submitted::Done(error_response(&id, &err))
            }
        }
    }

    /// Submits one parsed request without blocking on the worker pool.
    pub fn submit(&self, request: Request) -> Submitted {
        self.submit_with_parse(request, 0.0)
    }

    fn submit_with_parse(&self, request: Request, parse_us: f64) -> Submitted {
        let started = Instant::now();
        let op = request.op;
        let id = request.id.clone();
        let ctx = CallCtx {
            id: id.clone(),
            op,
            debug: request.debug,
            parse_us,
            request_id: format!(
                "req-{}",
                NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1
            ),
            started,
        };
        // Open the request's span context before any span: everything
        // recorded on this thread (and, via the job, on the workers)
        // now assembles into one tree in the trace store.
        let span_ctx = paragraph_obs::store_enabled().then(|| {
            let span_ctx = paragraph_obs::SpanContext::request(&ctx.request_id, self.config.shard);
            paragraph_obs::trace_store().begin(&ctx.request_id, self.config.shard);
            span_ctx
        });
        let _ctx_guard = span_ctx.as_ref().map(paragraph_obs::SpanContext::enter);
        if parse_us > 0.0 {
            let parse_start = started
                .checked_sub(Duration::from_secs_f64(parse_us / 1e6))
                .unwrap_or(started);
            paragraph_obs::record_span_at("parse", parse_start, started, Vec::new());
        }
        // The serve_request span guard must drop (recording the span)
        // before `finalize` completes the trace, so inline-answered ops
        // keep it in their span tree; `Ok` is a resolved response,
        // `Err` a queued worker receiver.
        let outcome: Result<Value, mpsc::Receiver<Value>> = {
            let _span =
                paragraph_obs::span!("serve_request", request_id = ctx.request_id, op = op.name());
            match op {
                // Control plane: answered inline, never queued.
                Op::Health => Ok(ok_response(&id, self.health(), None)),
                Op::Metrics => Ok(ok_response(
                    &id,
                    json!({
                        "metrics": self.metrics.snapshot(&self.cache),
                        "prometheus": self.metrics.render(&self.cache),
                    }),
                    None,
                )),
                Op::Reload => Ok(match self.registry.reload() {
                    Ok(report) => {
                        self.refresh_after_reload();
                        if let Some(hook) = lock_hook(&self.reload_hook).as_ref() {
                            hook();
                        }
                        ok_response(
                            &id,
                            json!({"models": report.models, "ensemble": report.ensemble}),
                            None,
                        )
                    }
                    Err(e) => error_response(
                        &id,
                        &ServeError::new(ErrorCode::Internal, format!("reload failed: {e}")),
                    ),
                }),
                // Data plane: through the bounded queue.
                Op::Predict | Op::Stats | Op::Erc | Op::DebugPanic => {
                    match self.try_enqueue(request, &ctx.request_id, started, span_ctx.clone()) {
                        Ok(rx) => Err(rx),
                        Err(response) => Ok(response),
                    }
                }
            }
        };
        match outcome {
            Ok(response) => Submitted::Done(self.finalize(ctx, response)),
            Err(rx) => Submitted::Pending(PendingCall { rx, ctx }),
        }
    }

    /// Non-blocking check on a pending call: `Ok(response)` once the
    /// worker replied (metrics recorded, envelope finalised), `Err`
    /// handing the call back while it is still in flight.
    #[allow(clippy::missing_errors_doc)]
    pub fn poll(&self, call: PendingCall) -> Result<Value, PendingCall> {
        match call.rx.try_recv() {
            Ok(response) => Ok(self.finalize(call.ctx, response)),
            Err(mpsc::TryRecvError::Empty) => Err(call),
            Err(mpsc::TryRecvError::Disconnected) => {
                let response = error_response(
                    &call.ctx.id,
                    &ServeError::new(ErrorCode::Internal, "worker dropped the request"),
                );
                Ok(self.finalize(call.ctx, response))
            }
        }
    }

    /// Blocks until a pending call resolves.
    pub fn wait(&self, call: PendingCall) -> Value {
        match call.rx.recv() {
            Ok(response) => self.finalize(call.ctx, response),
            Err(_) => {
                let response = error_response(
                    &call.ctx.id,
                    &ServeError::new(ErrorCode::Internal, "worker dropped the request"),
                );
                self.finalize(call.ctx, response)
            }
        }
    }

    /// Invalidates reload-sensitive state: clears the prediction cache
    /// and re-derives the drift baseline from the registry's current
    /// snapshot. Runs automatically after this service's own `reload`;
    /// the sharded gateway also calls it on sibling shards (which share
    /// the registry but own their caches) via [`Service::set_reload_hook`].
    pub fn refresh_after_reload(&self) {
        self.cache.clear();
        self.drift.set_baseline(
            self.metrics.registry(),
            baseline_from_snapshot(&self.registry.current()),
        );
    }

    /// Registers a callback invoked after a successful `reload` op has
    /// refreshed this service. Replaces any previous hook.
    pub fn set_reload_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *lock_hook(&self.reload_hook) = Some(Box::new(hook));
    }

    /// Records metrics and runs the shared post-processing for one
    /// resolved request. Every response — inline, queued, or synthesised
    /// on a dead worker — funnels through here exactly once.
    fn finalize(&self, ctx: CallCtx, mut response: Value) -> Value {
        let latency = ctx.started.elapsed();
        let ok = response["ok"].as_bool() == Some(true);
        self.metrics.record(ctx.op, latency, ok);
        self.finish_request(
            &ctx.request_id,
            ctx.op,
            ctx.debug,
            ctx.parse_us,
            latency,
            ok,
            &mut response,
        );
        response
    }

    /// Post-processing common to every request: pops the workers'
    /// stage-timing payload off the envelope, maintains the slow-request
    /// log, emits the (sampled) event record, and attaches the `debug`
    /// breakdown when the client asked for it. Never touches `result`.
    #[allow(clippy::too_many_arguments)]
    fn finish_request(
        &self,
        request_id: &str,
        op: Op,
        debug: bool,
        parse_us: f64,
        latency: Duration,
        ok: bool,
        response: &mut Value,
    ) {
        let worker_obs = match response {
            Value::Object(m) => m.remove(OBS_KEY),
            _ => None,
        };
        let latency_us = latency.as_secs_f64() * 1e6;
        let mut stages = serde_json::Map::new();
        stages.insert("parse_us", json!(parse_us));
        let mut model = None;
        let mut cache_hit = None;
        let mut member_max_v = None;
        let mut batched = None;
        let mut ood = None;
        if let Some(Value::Object(mut o)) = worker_obs {
            if let Some(Value::Object(s)) = o.remove("stages") {
                for (k, v) in s.iter() {
                    stages.insert(k.clone(), v.clone());
                }
            }
            model = o.remove("model").and_then(|v| v.as_str().map(String::from));
            cache_hit = o.remove("cache_hit").and_then(|v| v.as_bool());
            member_max_v = o.remove("member_max_v").and_then(|v| v.as_f64());
            batched = o.remove("batched").and_then(|v| v.as_u64());
            ood = o.remove("ood").and_then(|v| v.as_bool());
        }
        stages.insert("total_us", json!(latency_us));
        let slow = latency >= self.config.slow_threshold;
        if slow {
            self.slow_requests.inc();
        }
        if paragraph_obs::store_enabled() {
            // Tail retention: the request is over, its outcome known —
            // decide now whether its span tree is worth keeping.
            let shed = matches!(
                response["error"]["code"].as_str(),
                Some("overloaded" | "deadline_exceeded")
            );
            let stage_pairs = stages
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect();
            paragraph_obs::trace_store().complete(
                request_id,
                paragraph_obs::RequestOutcome {
                    op: op.name().to_owned(),
                    ok,
                    shed,
                    slow,
                    ood: ood.unwrap_or(false),
                    total_us: latency_us,
                    stages: stage_pairs,
                },
            );
        }
        let sampled = if ok {
            let n = self.ok_requests.fetch_add(1, Ordering::Relaxed);
            n.is_multiple_of(self.config.event_sample.max(1))
        } else {
            true // errors are always logged
        };
        if paragraph_obs::events_enabled() && (sampled || slow) {
            let stages_json = serde_json::to_string(&Value::Object(stages.clone()))
                .expect("stage timings serialise");
            let mut event = paragraph_obs::Event::new("request")
                .str_field("request_id", request_id)
                .str_field("op", op.name())
                .str_field("span", "serve_request")
                .bool_field("ok", ok)
                .bool_field("slow", slow)
                .f64_field("latency_us", latency_us)
                .raw_field("stages", &stages_json);
            if let Some(m) = &model {
                event = event.str_field("model", m);
            }
            if let Some(c) = cache_hit {
                event = event.bool_field("cache_hit", c);
            }
            if let Some(v) = member_max_v {
                event = event.f64_field("member_max_v", v);
            }
            if let Some(b) = batched {
                event = event.u64_field("batched", b);
            }
            if let Some(o) = ood {
                event = event.bool_field("ood", o);
            }
            event.emit();
            if slow {
                paragraph_obs::Event::new("slow_request")
                    .str_field("request_id", request_id)
                    .str_field("op", op.name())
                    .str_field("span", "serve_request")
                    .f64_field("latency_us", latency_us)
                    .f64_field(
                        "threshold_us",
                        self.config.slow_threshold.as_secs_f64() * 1e6,
                    )
                    .emit();
            }
        }
        if debug {
            let mut dbg = serde_json::Map::new();
            dbg.insert("request_id", json!(request_id));
            dbg.insert("span", json!("serve_request"));
            dbg.insert("slow", json!(slow));
            if let Some(m) = model {
                dbg.insert("model", json!(m));
            }
            if let Some(c) = cache_hit {
                dbg.insert("cache_hit", json!(c));
            }
            if let Some(v) = member_max_v {
                dbg.insert("member_max_v", json!(v));
            }
            if let Some(b) = batched {
                dbg.insert("batched", json!(b));
            }
            if let Some(o) = ood {
                dbg.insert("ood", json!(o));
            }
            dbg.insert("stages", Value::Object(stages));
            response["debug"] = Value::Object(dbg);
        }
    }

    /// Queues one data-plane request, returning the reply channel on
    /// success or the rejection envelope (`overloaded` / pool gone).
    fn try_enqueue(
        &self,
        request: Request,
        request_id: &str,
        accepted: Instant,
        span_ctx: Option<paragraph_obs::SpanContext>,
    ) -> Result<Receiver<Value>, Value> {
        let id = request.id.clone();
        let deadline = accepted
            + request
                .deadline_ms
                .map(Duration::from_millis)
                .unwrap_or(self.config.default_deadline);
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Value>(1);
        let job = Job {
            request,
            request_id: request_id.to_owned(),
            deadline,
            enqueued: accepted,
            reply: reply_tx,
            ctx: span_ctx,
        };
        let sender = self.jobs.as_ref().expect("pool alive while service exists");
        match sender.try_send(job) {
            Ok(()) => {
                self.metrics.queue_entered();
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => Err(error_response(
                &id,
                &ServeError::new(
                    ErrorCode::Overloaded,
                    format!(
                        "request queue full ({} queued); retry later",
                        self.config.queue_capacity
                    ),
                ),
            )),
            Err(TrySendError::Disconnected(_)) => Err(error_response(
                &id,
                &ServeError::new(ErrorCode::Internal, "worker pool is gone"),
            )),
        }
    }

    fn health(&self) -> Value {
        let snapshot = self.registry.current();
        let (degraded, reasons) = self.drift.status();
        let store_counters = paragraph_obs::trace_store().counters();
        let mut retained_by_reason = serde_json::Map::new();
        for (reason, n) in paragraph_obs::RetainReason::ALL
            .iter()
            .zip(store_counters.retained.iter())
        {
            retained_by_reason.insert(reason.name(), json!(*n));
        }
        let opt = |v: Option<f64>| v.map_or(Value::Null, |v| json!(v));
        let model_registry: Vec<Value> = snapshot
            .models
            .iter()
            .map(|(name, m)| {
                json!({
                    "name": name,
                    "target": m.target.name(),
                    "param_count": m.param_count(),
                    "max_value": opt(m.max_value),
                    "baseline_stats": m.baseline.is_some(),
                    "precision": m.precision_name(),
                    "compile_fallback": m
                        .compile_fallback()
                        .map_or(Value::Null, |reason| json!(reason)),
                })
            })
            .collect();
        let ensemble_ranges: Vec<Value> = snapshot
            .ensemble
            .as_ref()
            .map(|e| {
                e.members()
                    .iter()
                    .zip(&snapshot.ensemble_members)
                    .map(|(m, key)| {
                        json!({
                            "name": key,
                            "max_value": opt(m.max_value),
                            "label_min": opt(m.baseline.as_ref().and_then(|b| b.label_min)),
                            "label_max": opt(m.baseline.as_ref().and_then(|b| b.label_max)),
                            "baseline_stats": m.baseline.is_some(),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        json!({
            "status": if degraded { "degraded" } else { "ok" },
            "degraded_reasons": reasons,
            "models": snapshot.keys(),
            "model_registry": model_registry,
            "ensemble_members": snapshot.ensemble_members.clone(),
            "ensemble_ranges": ensemble_ranges,
            "drift": {
                "active": self.drift.is_active(),
                "ood_requests_total": self.drift.ood_requests_total(),
                "ood_fraction": self.drift.ood_fraction(),
            },
            "events": {
                "enabled": paragraph_obs::events_enabled(),
                "dropped": paragraph_obs::dropped_events(),
                // Wall-clock anchor of the shared span/event epoch:
                // unix_ns = epoch_unix_ns + ts_us * 1000 correlates
                // events.jsonl, trace.json, and /debug/traces
                // timestamps with external timelines.
                "epoch_unix_ns": paragraph_obs::epoch_unix_nanos(),
            },
            "trace_store": {
                "enabled": paragraph_obs::store_enabled(),
                "epoch_unix_ns": paragraph_obs::epoch_unix_nanos(),
                "completed": store_counters.completed,
                "retained": Value::Object(retained_by_reason),
                "not_retained": store_counters.not_retained,
                "dropped_spans": store_counters.dropped_spans,
                "evicted": store_counters.evicted,
                "stored": store_counters.stored,
            },
            "workers": self.workers.len(),
            "queue_capacity": self.config.queue_capacity,
            "cache_capacity": self.config.cache_capacity,
            "uptime_ms": self.metrics.uptime().as_millis() as u64,
        })
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing the channel lets every worker's `recv` fail and exit.
        self.jobs = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Poison-tolerant lock on the reload hook: a panicking hook must not
/// wedge every later reload.
fn lock_hook(
    hook: &Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
) -> std::sync::MutexGuard<'_, Option<Box<dyn Fn() + Send + Sync>>> {
    hook.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Attaches the worker's stage-timing payload to the response envelope
/// under [`OBS_KEY`]; [`Service::call`] pops it before the envelope
/// leaves the service, so the wire payload is unchanged.
fn attach_obs(response: &mut Value, obs: Value) {
    if let Value::Object(m) = response {
        m.insert(OBS_KEY, obs);
    }
}

/// Latest instant an admission window may stay open for `job` without
/// risking its deadline: at most half of the budget remaining when the
/// window opened goes to collection, the rest stays reserved for
/// inference and response writing. A job already past its deadline
/// closes the window immediately.
fn latency_budget_close(job: &Job, opened: Instant) -> Instant {
    opened + job.deadline.saturating_duration_since(opened) / 2
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: &Arc<Mutex<Receiver<Job>>>,
    registry: &Arc<ModelRegistry>,
    cache: &Arc<PredictionCache>,
    metrics: &Arc<Metrics>,
    drift: &Arc<DriftMonitor>,
    debug_ops: bool,
    max_batch: usize,
    batch_window: Duration,
) {
    loop {
        // Block for one job, then opportunistically drain whatever else
        // is already queued (up to max_batch) under the same lock, so
        // co-queued predictions can share a forward pass. Each job is
        // stamped with the instant it left the queue.
        let mut jobs: Vec<(Job, Instant)> = Vec::with_capacity(max_batch);
        {
            let guard = rx.lock().expect("queue lock poisoned");
            match guard.recv() {
                Ok(job) => jobs.push((job, Instant::now())),
                Err(_) => return, // service dropped
            }
            while jobs.len() < max_batch {
                match guard.try_recv() {
                    Ok(job) => jobs.push((job, Instant::now())),
                    Err(_) => break,
                }
            }
            // Continuous micro-batching: with a predict job in hand and
            // batching headroom, keep the receiver open for the
            // admission window so jobs arriving *now* join this forward
            // pass instead of waiting a full batch turn. Holding the
            // queue lock while waiting doubles as admit-while-running:
            // other workers block on the lock, so exactly one window
            // collects while earlier batches execute. The window is
            // re-clamped as each job lands so queue wait plus window
            // never eats more than half of anyone's deadline budget.
            if !batch_window.is_zero()
                && jobs.len() < max_batch
                && jobs.iter().any(|(j, _)| j.request.op == Op::Predict)
            {
                let opened = Instant::now();
                let mut close_by = opened + batch_window;
                for (job, _) in &jobs {
                    close_by = close_by.min(latency_budget_close(job, opened));
                }
                let mut admitted = 0_u64;
                while jobs.len() < max_batch {
                    let now = Instant::now();
                    if now >= close_by {
                        break;
                    }
                    match guard.recv_timeout(close_by - now) {
                        Ok(job) => {
                            close_by = close_by.min(latency_budget_close(&job, opened));
                            jobs.push((job, Instant::now()));
                            admitted += 1;
                        }
                        // Window elapsed, or the service was dropped —
                        // either way serve what was collected.
                        Err(_) => break,
                    }
                }
                if admitted > 0 {
                    metrics.window_admitted(admitted);
                }
            }
        }
        let collected = Instant::now();
        let mut predict_jobs = Vec::new();
        for (job, popped) in jobs {
            metrics.queue_left();
            let queue_wait_us = popped.saturating_duration_since(job.enqueued).as_secs_f64() * 1e6;
            let window_wait_us = collected.saturating_duration_since(popped).as_secs_f64() * 1e6;
            let id = job.request.id.clone();
            {
                // The wait stages were measured with plain instants;
                // synthesize their spans under the job's context so
                // the request's tree shows them.
                let _ctx = job.ctx.as_ref().map(paragraph_obs::SpanContext::enter);
                paragraph_obs::record_span_at("queue_wait", job.enqueued, popped, Vec::new());
                if window_wait_us > 0.0 {
                    paragraph_obs::record_span_at("window_wait", popped, collected, Vec::new());
                }
            }
            if Instant::now() > job.deadline {
                let mut response = error_response(
                    &id,
                    &ServeError::new(
                        ErrorCode::DeadlineExceeded,
                        "deadline passed before a worker picked the request up",
                    ),
                );
                attach_obs(
                    &mut response,
                    json!({"stages": {
                        "queue_wait_us": queue_wait_us,
                        "window_wait_us": window_wait_us,
                    }}),
                );
                let _ = job.reply.send(response);
                continue;
            }
            if job.request.op == Op::Predict {
                predict_jobs.push(QueuedPredict {
                    job,
                    queue_wait_us,
                    window_wait_us,
                });
                continue;
            }
            let exec_started = Instant::now();
            let outcome = {
                // Guard dropped before the reply is sent so every span
                // lands ahead of the submitter's retention decision.
                let _ctx = job.ctx.as_ref().map(paragraph_obs::SpanContext::enter);
                let _span = paragraph_obs::span!("execute", op = job.request.op.name());
                catch_unwind(AssertUnwindSafe(|| {
                    execute(&job.request, registry, cache, debug_ops)
                }))
            };
            let exec_us = exec_started.elapsed().as_secs_f64() * 1e6;
            let mut response = match outcome {
                Ok(Ok((result, cached))) => ok_response(&id, result, cached),
                Ok(Err(err)) => error_response(&id, &err),
                Err(panic) => error_response(
                    &id,
                    &ServeError::new(
                        ErrorCode::Internal,
                        format!("worker panicked: {}", panic_message(&panic)),
                    ),
                ),
            };
            attach_obs(
                &mut response,
                json!({"stages": {
                    "queue_wait_us": queue_wait_us,
                    "window_wait_us": window_wait_us,
                    "exec_us": exec_us,
                }}),
            );
            // The caller may have given up (e.g. its connection died);
            // that must not kill the worker.
            let _ = job.reply.send(response);
        }
        if !predict_jobs.is_empty() {
            predict_many(predict_jobs, registry, cache, metrics, drift);
        }
    }
}

/// A predict job as it leaves the worker's collection phase, with the
/// time it spent queued and the time the admission window held it.
struct QueuedPredict {
    job: Job,
    queue_wait_us: f64,
    window_wait_us: f64,
}

/// One predict job that parsed and resolved but missed the cache.
struct PendingPredict {
    job: Job,
    circuit: Circuit,
    content_hash: u64,
    queue_wait_us: f64,
    window_wait_us: f64,
    lookup_us: f64,
    /// Drift monitor's verdict on this request's feature rows.
    ood: bool,
}

/// How a model group's forward pass was timed, for stage attribution.
enum GroupTiming {
    /// Single job: exact graph-build / inference split (and, for the
    /// ensemble, which member Algorithm 2 picked most often).
    Profiled {
        profile: paragraph::PredictProfile,
        member_max_v: Option<f64>,
    },
    /// Batched forward pass over `n` circuits: only the shared total.
    Batched { total_us: f64, n: usize },
}

/// Serves a drained batch of predict jobs: per-job parse / model
/// resolution / cache lookup, then one batched forward pass per distinct
/// model over the cache misses. Each job gets exactly the response the
/// single-request path would have produced; a panic inside one model
/// group fails only that group's jobs.
fn predict_many(
    jobs: Vec<QueuedPredict>,
    registry: &Arc<ModelRegistry>,
    cache: &Arc<PredictionCache>,
    metrics: &Arc<Metrics>,
    drift: &Arc<DriftMonitor>,
) {
    let snapshot = registry.current();
    let mut groups: std::collections::BTreeMap<String, (ModelRef, Vec<PendingPredict>)> =
        std::collections::BTreeMap::new();
    for QueuedPredict {
        job,
        queue_wait_us,
        window_wait_us,
    } in jobs
    {
        let id = job.request.id.clone();
        let ctx_guard = job.ctx.as_ref().map(paragraph_obs::SpanContext::enter);
        let lookup_started = Instant::now();
        let circuit = match required_netlist(&job.request) {
            Ok(c) => c,
            Err(err) => {
                let _ = job.reply.send(error_response(&id, &err));
                continue;
            }
        };
        // Every parsed circuit feeds the drift windows, cache hit or
        // not: the monitor watches traffic, not model invocations. The
        // per-request verdict rides along so the tail sampler can
        // retain OOD requests.
        let ood = drift.observe(&paragraph::raw_feature_rows(&circuit));
        let (key, model) = match snapshot.resolve(job.request.model.as_deref()) {
            Ok(resolved) => resolved,
            Err(m) => {
                let err = ServeError::new(ErrorCode::UnknownModel, m);
                let _ = job.reply.send(error_response(&id, &err));
                continue;
            }
        };
        let content_hash = fnv1a(&write_flat_spice(&circuit));
        if let Some(hit) = cache.get(&key, content_hash) {
            let lookup_done = Instant::now();
            let lookup_us = lookup_done.duration_since(lookup_started).as_secs_f64() * 1e6;
            paragraph_obs::record_span_at("cache_lookup", lookup_started, lookup_done, Vec::new());
            let mut response = ok_response(&id, (*hit).clone(), Some(true));
            attach_obs(
                &mut response,
                json!({
                    "stages": {
                        "queue_wait_us": queue_wait_us,
                        "window_wait_us": window_wait_us,
                        "cache_lookup_us": lookup_us,
                    },
                    "model": key,
                    "cache_hit": true,
                    "ood": ood,
                }),
            );
            drop(ctx_guard);
            let _ = job.reply.send(response);
            continue;
        }
        let lookup_done = Instant::now();
        let lookup_us = lookup_done.duration_since(lookup_started).as_secs_f64() * 1e6;
        paragraph_obs::record_span_at("cache_lookup", lookup_started, lookup_done, Vec::new());
        groups
            .entry(key)
            .or_insert_with(|| (model, Vec::new()))
            .1
            .push(PendingPredict {
                job,
                circuit,
                content_hash,
                queue_wait_us,
                window_wait_us,
                lookup_us,
                ood,
            });
    }
    for (key, (model, pending)) in groups {
        metrics.record_batch(pending.len());
        if pending.len() > 1 {
            paragraph_obs::global()
                .counter("paragraph_serve_predict_batched_jobs_total", &[])
                .add(pending.len() as u64);
        }
        let circuits: Vec<&Circuit> = pending.iter().map(|p| &p.circuit).collect();
        // One batch context covering every member: spans recorded under
        // it (batch assemble, forward pass) fan out to each member's
        // trace. Guards are scoped so all spans land before replies go
        // out and the submitters finalize their traces.
        let batch_ctx = if pending.iter().any(|p| p.job.ctx.is_some()) {
            let shard = pending
                .iter()
                .find_map(|p| p.job.ctx.as_ref().and_then(|c| c.shard()));
            Some(paragraph_obs::SpanContext::batch(
                pending.iter().map(|p| p.job.request_id.as_str()),
                shard,
            ))
        } else {
            None
        };
        let outcome = {
            let _batch_guard = batch_ctx.as_ref().map(paragraph_obs::SpanContext::enter);
            let _span = paragraph_obs::span!("inference", model = key, jobs = pending.len());
            catch_unwind(AssertUnwindSafe(|| {
                if circuits.len() == 1 {
                    // Lone job: the profiled path runs the identical
                    // build_graph + predict_graph chain (bit-identical
                    // output) while splitting the stage timings out.
                    match &model {
                        ModelRef::Single(m) => {
                            let (preds, profile) = m.predict_circuit_profiled(circuits[0]);
                            let timing = GroupTiming::Profiled {
                                profile,
                                member_max_v: None,
                            };
                            (vec![preds], timing)
                        }
                        ModelRef::Ensemble(e) => {
                            let (preds, profile, selected) =
                                e.predict_circuit_profiled(circuits[0]);
                            let member_max_v = selected
                                .iter()
                                .enumerate()
                                .max_by_key(|(_, &n)| n)
                                .filter(|(_, &n)| n > 0)
                                .and_then(|(i, _)| e.members()[i].max_value);
                            let timing = GroupTiming::Profiled {
                                profile,
                                member_max_v,
                            };
                            (vec![preds], timing)
                        }
                    }
                } else {
                    let batch_started = Instant::now();
                    let per_circuit = match &model {
                        ModelRef::Single(m) => m.predict_circuits(&circuits),
                        ModelRef::Ensemble(e) => e.predict_circuits(&circuits),
                    };
                    let timing = GroupTiming::Batched {
                        total_us: batch_started.elapsed().as_secs_f64() * 1e6,
                        n: circuits.len(),
                    };
                    (per_circuit, timing)
                }
            }))
        };
        match outcome {
            Ok((per_circuit, timing)) => {
                // Attribute this forward pass to its inference path
                // (compiled executor vs tape). Cache hits never get here.
                let inference_us = match &timing {
                    GroupTiming::Profiled { profile, .. } => profile.inference_us,
                    GroupTiming::Batched { total_us, .. } => *total_us,
                };
                metrics.record_path(
                    model.uses_executor(),
                    Duration::from_secs_f64(inference_us / 1e6),
                );
                metrics.record_precision(
                    model.precision_name(),
                    Duration::from_secs_f64(inference_us / 1e6),
                );
                for (p, preds) in pending.into_iter().zip(per_circuit) {
                    let ctx_guard = p.job.ctx.as_ref().map(paragraph_obs::SpanContext::enter);
                    let response = {
                        let _span =
                            paragraph_obs::span!("predict_job", request_id = p.job.request_id);
                        let id = p.job.request.id.clone();
                        let result = render_prediction(&key, &model, &p.circuit, &preds);
                        cache.put(&key, p.content_hash, Arc::new(result.clone()));
                        let mut stages = json!({
                            "queue_wait_us": p.queue_wait_us,
                            "window_wait_us": p.window_wait_us,
                            "cache_lookup_us": p.lookup_us,
                        });
                        let mut obs = serde_json::Map::new();
                        match &timing {
                            GroupTiming::Profiled {
                                profile,
                                member_max_v,
                            } => {
                                stages["graph_build_us"] = json!(profile.graph_build_us);
                                stages["inference_us"] = json!(profile.inference_us);
                                if let Some(v) = member_max_v {
                                    obs.insert("member_max_v", json!(*v));
                                }
                            }
                            GroupTiming::Batched { total_us, n } => {
                                stages["inference_us"] = json!(*total_us);
                                obs.insert("batched", json!(*n as u64));
                            }
                        }
                        obs.insert("stages", stages);
                        obs.insert("model", json!(key.clone()));
                        obs.insert("cache_hit", json!(false));
                        obs.insert("ood", json!(p.ood));
                        let mut response = ok_response(&id, result, Some(false));
                        attach_obs(&mut response, Value::Object(obs));
                        response
                    };
                    drop(ctx_guard);
                    let _ = p.job.reply.send(response);
                }
            }
            Err(panic) => {
                let err = ServeError::new(
                    ErrorCode::Internal,
                    format!("worker panicked: {}", panic_message(&panic)),
                );
                for p in pending {
                    let _ = p.job.reply.send(error_response(&p.job.request.id, &err));
                }
            }
        }
    }
}

/// The predict response body for one circuit's predictions — shared by
/// the batched and single-request paths so they stay byte-identical.
fn render_prediction(
    key: &str,
    model: &ModelRef,
    circuit: &Circuit,
    preds: &[Option<f64>],
) -> Value {
    match model {
        ModelRef::Single(m) => {
            let predictions: Vec<Value> = if m.target.on_nets() {
                named_predictions(preds, circuit.nets().iter().map(|n| n.name.as_str()), "net")
            } else {
                named_predictions(
                    preds,
                    circuit.devices().iter().map(|d| d.name.as_str()),
                    "device",
                )
            };
            json!({
                "model": key,
                "target": m.target.name(),
                "predictions": predictions,
            })
        }
        ModelRef::Ensemble(e) => json!({
            "model": key,
            "target": "CAP",
            "members": e.members().len(),
            "predictions": named_predictions(
                preds,
                circuit.nets().iter().map(|n| n.name.as_str()),
                "net",
            ),
        }),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

type ExecResult = Result<(Value, Option<bool>), ServeError>;

fn execute(
    request: &Request,
    registry: &ModelRegistry,
    cache: &PredictionCache,
    debug_ops: bool,
) -> ExecResult {
    match request.op {
        Op::Predict => predict(request, registry, cache),
        Op::Stats => stats(request).map(|v| (v, None)),
        Op::Erc => erc(request).map(|v| (v, None)),
        Op::DebugPanic if debug_ops => panic!("debug panic requested"),
        Op::DebugPanic => Err(ServeError::new(
            ErrorCode::BadRequest,
            "debug ops are disabled on this service",
        )),
        // Control-plane ops never reach the queue.
        Op::Health | Op::Metrics | Op::Reload => Err(ServeError::new(
            ErrorCode::Internal,
            "control-plane op routed to a worker",
        )),
    }
}

fn required_netlist(request: &Request) -> Result<Circuit, ServeError> {
    let text = request.netlist.as_deref().ok_or_else(|| {
        ServeError::new(
            ErrorCode::BadRequest,
            format!("op '{}' requires a 'netlist' field", request.op.name()),
        )
    })?;
    parse_spice(text)
        .map_err(|e| ServeError::new(ErrorCode::InvalidNetlist, format!("parse error: {e}")))?
        .flatten()
        .map_err(|e| ServeError::new(ErrorCode::InvalidNetlist, format!("flatten error: {e}")))
}

fn predict(request: &Request, registry: &ModelRegistry, cache: &PredictionCache) -> ExecResult {
    let circuit = required_netlist(request)?;
    let snapshot = registry.current();
    let (key, model) = snapshot
        .resolve(request.model.as_deref())
        .map_err(|m| ServeError::new(ErrorCode::UnknownModel, m))?;
    // Key on the flattened canonical text: hierarchy spelling and
    // comments don't fragment the cache, electrical changes do.
    let content_hash = fnv1a(&write_flat_spice(&circuit));
    if let Some(hit) = cache.get(&key, content_hash) {
        return Ok(((*hit).clone(), Some(true)));
    }
    let preds = match &model {
        ModelRef::Single(m) => m.predict_circuit(&circuit),
        ModelRef::Ensemble(e) => e.predict_circuit(&circuit),
    };
    let result = render_prediction(&key, &model, &circuit, &preds);
    cache.put(&key, content_hash, Arc::new(result.clone()));
    Ok((result, Some(false)))
}

fn named_predictions<'a>(
    preds: &[Option<f64>],
    names: impl Iterator<Item = &'a str>,
    label: &str,
) -> Vec<Value> {
    names
        .zip(preds)
        .filter_map(|(name, p)| {
            p.map(|v| {
                let mut entry = serde_json::Map::new();
                entry.insert(label, Value::String(name.to_owned()));
                entry.insert("value", json!(v));
                Value::Object(entry)
            })
        })
        .collect()
}

fn stats(request: &Request) -> Result<Value, ServeError> {
    let circuit = required_netlist(request)?;
    let k = circuit.kind_counts();
    let cg = paragraph::build_graph(&circuit);
    Ok(json!({
        "circuit": circuit.name,
        "nets": circuit.num_nets(),
        "signal_nets": k.net,
        "devices": circuit.num_devices(),
        "kinds": {
            "tran": k.tran, "tran_th": k.tran_th, "res": k.res,
            "cap": k.cap, "bjt": k.bjt, "dio": k.dio,
        },
        "graph": {
            "nodes": cg.graph.num_nodes(),
            "edges": cg.graph.num_edges(),
            "edge_types": cg.graph.num_edge_types(),
        },
    }))
}

fn erc(request: &Request) -> Result<Value, ServeError> {
    let circuit = required_netlist(request)?;
    let findings = erc_check(&circuit);
    Ok(json!({
        "circuit": circuit.name,
        "clean": findings.is_empty(),
        "findings": findings.iter().map(|f| json!(f.describe(&circuit))).collect::<Vec<_>>(),
    }))
}
