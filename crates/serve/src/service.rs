//! The in-process service: a fixed worker pool behind a bounded queue,
//! with per-request deadlines, panic isolation, caching, and metrics.
//!
//! [`Service::call`] is the single entry point both for in-process
//! embedders and for the TCP front end ([`crate::server`]). Heavy
//! operations (`predict`, `stats`, `erc`) are executed on the worker
//! pool; control-plane operations (`health`, `metrics`, `reload`) are
//! answered inline so they stay responsive when the queue is full.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use paragraph_netlist::{erc_check, parse_spice, write_flat_spice, Circuit};
use serde_json::{json, Value};

use crate::cache::{fnv1a, PredictionCache};
use crate::metrics::Metrics;
use crate::protocol::{error_response, ok_response, ErrorCode, Op, Request, ServeError};
use crate::registry::{ModelRef, ModelRegistry};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing queued requests (min 1).
    pub workers: usize,
    /// Bounded queue length; requests beyond it are rejected with
    /// `overloaded` (min 1).
    pub queue_capacity: usize,
    /// Prediction cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Deadline applied when a request does not set `deadline_ms`.
    pub default_deadline: Duration,
    /// Honour the `debug_panic` op (tests only).
    pub enable_debug_ops: bool,
    /// How many queued jobs a worker drains per wake-up (min 1). Predict
    /// jobs in the drained batch that resolve to the same model run as
    /// one forward pass over their circuits' block-diagonal graph union.
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline: Duration::from_secs(30),
            enable_debug_ops: false,
            max_batch: 8,
        }
    }
}

struct Job {
    request: Request,
    deadline: Instant,
    reply: SyncSender<Value>,
}

/// The concurrent inference service.
pub struct Service {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    cache: Arc<PredictionCache>,
    config: ServiceConfig,
    jobs: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.workers.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts the worker pool over `registry`.
    pub fn new(registry: Arc<ModelRegistry>, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let metrics = Arc::new(Metrics::new());
        let cache = Arc::new(PredictionCache::new(config.cache_capacity));
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let registry = registry.clone();
                let cache = cache.clone();
                let metrics = metrics.clone();
                let debug_ops = config.enable_debug_ops;
                let max_batch = config.max_batch.max(1);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &registry, &cache, &metrics, debug_ops, max_batch)
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self {
            registry,
            metrics,
            cache,
            config,
            jobs: Some(tx),
            workers: handles,
        }
    }

    /// The registry backing this service.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The prediction cache.
    pub fn cache(&self) -> &Arc<PredictionCache> {
        &self.cache
    }

    /// Handles one raw protocol line, returning the response rendered as
    /// one compact JSON line (without trailing newline).
    pub fn handle_line(&self, line: &str) -> String {
        let response = match Request::parse(line) {
            Ok(request) => self.call(request),
            Err(err) => {
                // Salvage the id for the error envelope when the line was
                // at least a JSON object.
                let id = serde_json::from_str::<Value>(line)
                    .ok()
                    .and_then(|v| v.get("id").cloned())
                    .unwrap_or(Value::Null);
                self.metrics.bad_line();
                error_response(&id, &err)
            }
        };
        serde_json::to_string(&response).expect("response serialises")
    }

    /// Executes one parsed request and returns the response envelope.
    pub fn call(&self, request: Request) -> Value {
        let started = Instant::now();
        let op = request.op;
        let id = request.id.clone();
        let response = match op {
            // Control plane: answered inline, never queued.
            Op::Health => ok_response(&id, self.health(), None),
            Op::Metrics => ok_response(
                &id,
                json!({
                    "metrics": self.metrics.snapshot(&self.cache),
                    "prometheus": self.metrics.render(&self.cache),
                }),
                None,
            ),
            Op::Reload => match self.registry.reload() {
                Ok(report) => {
                    // New weights invalidate previously cached predictions.
                    self.cache.clear();
                    ok_response(
                        &id,
                        json!({"models": report.models, "ensemble": report.ensemble}),
                        None,
                    )
                }
                Err(e) => error_response(
                    &id,
                    &ServeError::new(ErrorCode::Internal, format!("reload failed: {e}")),
                ),
            },
            // Data plane: through the bounded queue.
            Op::Predict | Op::Stats | Op::Erc | Op::DebugPanic => self.enqueue(request, started),
        };
        let ok = response["ok"].as_bool() == Some(true);
        self.metrics.record(op, started.elapsed(), ok);
        response
    }

    fn enqueue(&self, request: Request, accepted: Instant) -> Value {
        let id = request.id.clone();
        let deadline = accepted
            + request
                .deadline_ms
                .map(Duration::from_millis)
                .unwrap_or(self.config.default_deadline);
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Value>(1);
        let job = Job {
            request,
            deadline,
            reply: reply_tx,
        };
        let sender = self.jobs.as_ref().expect("pool alive while service exists");
        match sender.try_send(job) {
            Ok(()) => self.metrics.queue_entered(),
            Err(TrySendError::Full(_)) => {
                return error_response(
                    &id,
                    &ServeError::new(
                        ErrorCode::Overloaded,
                        format!(
                            "request queue full ({} queued); retry later",
                            self.config.queue_capacity
                        ),
                    ),
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                return error_response(
                    &id,
                    &ServeError::new(ErrorCode::Internal, "worker pool is gone"),
                );
            }
        }
        match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => error_response(
                &id,
                &ServeError::new(ErrorCode::Internal, "worker dropped the request"),
            ),
        }
    }

    fn health(&self) -> Value {
        let snapshot = self.registry.current();
        json!({
            "status": "ok",
            "models": snapshot.keys(),
            "ensemble_members": snapshot.ensemble_members.clone(),
            "workers": self.workers.len(),
            "queue_capacity": self.config.queue_capacity,
            "cache_capacity": self.config.cache_capacity,
            "uptime_ms": self.metrics.uptime().as_millis() as u64,
        })
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing the channel lets every worker's `recv` fail and exit.
        self.jobs = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<Job>>>,
    registry: &Arc<ModelRegistry>,
    cache: &Arc<PredictionCache>,
    metrics: &Arc<Metrics>,
    debug_ops: bool,
    max_batch: usize,
) {
    loop {
        // Block for one job, then opportunistically drain whatever else
        // is already queued (up to max_batch) under the same lock, so
        // co-queued predictions can share a forward pass.
        let mut jobs = Vec::with_capacity(max_batch);
        {
            let guard = rx.lock().expect("queue lock poisoned");
            match guard.recv() {
                Ok(job) => jobs.push(job),
                Err(_) => return, // service dropped
            }
            while jobs.len() < max_batch {
                match guard.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        let mut predict_jobs = Vec::new();
        for job in jobs {
            metrics.queue_left();
            let id = job.request.id.clone();
            if Instant::now() > job.deadline {
                let response = error_response(
                    &id,
                    &ServeError::new(
                        ErrorCode::DeadlineExceeded,
                        "deadline passed before a worker picked the request up",
                    ),
                );
                let _ = job.reply.send(response);
                continue;
            }
            if job.request.op == Op::Predict {
                predict_jobs.push(job);
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                execute(&job.request, registry, cache, debug_ops)
            }));
            let response = match outcome {
                Ok(Ok((result, cached))) => ok_response(&id, result, cached),
                Ok(Err(err)) => error_response(&id, &err),
                Err(panic) => error_response(
                    &id,
                    &ServeError::new(
                        ErrorCode::Internal,
                        format!("worker panicked: {}", panic_message(&panic)),
                    ),
                ),
            };
            // The caller may have given up (e.g. its connection died);
            // that must not kill the worker.
            let _ = job.reply.send(response);
        }
        if !predict_jobs.is_empty() {
            predict_many(predict_jobs, registry, cache);
        }
    }
}

/// One predict job that parsed and resolved but missed the cache.
struct PendingPredict {
    job: Job,
    circuit: Circuit,
    content_hash: u64,
}

/// Serves a drained batch of predict jobs: per-job parse / model
/// resolution / cache lookup, then one batched forward pass per distinct
/// model over the cache misses. Each job gets exactly the response the
/// single-request path would have produced; a panic inside one model
/// group fails only that group's jobs.
fn predict_many(jobs: Vec<Job>, registry: &Arc<ModelRegistry>, cache: &Arc<PredictionCache>) {
    let snapshot = registry.current();
    let mut groups: std::collections::BTreeMap<String, (ModelRef, Vec<PendingPredict>)> =
        std::collections::BTreeMap::new();
    for job in jobs {
        let id = job.request.id.clone();
        let circuit = match required_netlist(&job.request) {
            Ok(c) => c,
            Err(err) => {
                let _ = job.reply.send(error_response(&id, &err));
                continue;
            }
        };
        let (key, model) = match snapshot.resolve(job.request.model.as_deref()) {
            Ok(resolved) => resolved,
            Err(m) => {
                let err = ServeError::new(ErrorCode::UnknownModel, m);
                let _ = job.reply.send(error_response(&id, &err));
                continue;
            }
        };
        let content_hash = fnv1a(&write_flat_spice(&circuit));
        if let Some(hit) = cache.get(&key, content_hash) {
            let _ = job.reply.send(ok_response(&id, (*hit).clone(), Some(true)));
            continue;
        }
        groups
            .entry(key)
            .or_insert_with(|| (model, Vec::new()))
            .1
            .push(PendingPredict {
                job,
                circuit,
                content_hash,
            });
    }
    for (key, (model, pending)) in groups {
        if pending.len() > 1 {
            paragraph_obs::global()
                .counter("paragraph_serve_predict_batched_jobs_total", &[])
                .add(pending.len() as u64);
        }
        let circuits: Vec<&Circuit> = pending.iter().map(|p| &p.circuit).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| match &model {
            ModelRef::Single(m) => m.predict_circuits(&circuits),
            ModelRef::Ensemble(e) => e.predict_circuits(&circuits),
        }));
        match outcome {
            Ok(per_circuit) => {
                for (p, preds) in pending.into_iter().zip(per_circuit) {
                    let id = p.job.request.id.clone();
                    let result = render_prediction(&key, &model, &p.circuit, &preds);
                    cache.put(&key, p.content_hash, Arc::new(result.clone()));
                    let _ = p.job.reply.send(ok_response(&id, result, Some(false)));
                }
            }
            Err(panic) => {
                let err = ServeError::new(
                    ErrorCode::Internal,
                    format!("worker panicked: {}", panic_message(&panic)),
                );
                for p in pending {
                    let _ = p.job.reply.send(error_response(&p.job.request.id, &err));
                }
            }
        }
    }
}

/// The predict response body for one circuit's predictions — shared by
/// the batched and single-request paths so they stay byte-identical.
fn render_prediction(
    key: &str,
    model: &ModelRef,
    circuit: &Circuit,
    preds: &[Option<f64>],
) -> Value {
    match model {
        ModelRef::Single(m) => {
            let predictions: Vec<Value> = if m.target.on_nets() {
                named_predictions(preds, circuit.nets().iter().map(|n| n.name.as_str()), "net")
            } else {
                named_predictions(
                    preds,
                    circuit.devices().iter().map(|d| d.name.as_str()),
                    "device",
                )
            };
            json!({
                "model": key,
                "target": m.target.name(),
                "predictions": predictions,
            })
        }
        ModelRef::Ensemble(e) => json!({
            "model": key,
            "target": "CAP",
            "members": e.members().len(),
            "predictions": named_predictions(
                preds,
                circuit.nets().iter().map(|n| n.name.as_str()),
                "net",
            ),
        }),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

type ExecResult = Result<(Value, Option<bool>), ServeError>;

fn execute(
    request: &Request,
    registry: &ModelRegistry,
    cache: &PredictionCache,
    debug_ops: bool,
) -> ExecResult {
    match request.op {
        Op::Predict => predict(request, registry, cache),
        Op::Stats => stats(request).map(|v| (v, None)),
        Op::Erc => erc(request).map(|v| (v, None)),
        Op::DebugPanic if debug_ops => panic!("debug panic requested"),
        Op::DebugPanic => Err(ServeError::new(
            ErrorCode::BadRequest,
            "debug ops are disabled on this service",
        )),
        // Control-plane ops never reach the queue.
        Op::Health | Op::Metrics | Op::Reload => Err(ServeError::new(
            ErrorCode::Internal,
            "control-plane op routed to a worker",
        )),
    }
}

fn required_netlist(request: &Request) -> Result<Circuit, ServeError> {
    let text = request.netlist.as_deref().ok_or_else(|| {
        ServeError::new(
            ErrorCode::BadRequest,
            format!("op '{}' requires a 'netlist' field", request.op.name()),
        )
    })?;
    parse_spice(text)
        .map_err(|e| ServeError::new(ErrorCode::InvalidNetlist, format!("parse error: {e}")))?
        .flatten()
        .map_err(|e| ServeError::new(ErrorCode::InvalidNetlist, format!("flatten error: {e}")))
}

fn predict(request: &Request, registry: &ModelRegistry, cache: &PredictionCache) -> ExecResult {
    let circuit = required_netlist(request)?;
    let snapshot = registry.current();
    let (key, model) = snapshot
        .resolve(request.model.as_deref())
        .map_err(|m| ServeError::new(ErrorCode::UnknownModel, m))?;
    // Key on the flattened canonical text: hierarchy spelling and
    // comments don't fragment the cache, electrical changes do.
    let content_hash = fnv1a(&write_flat_spice(&circuit));
    if let Some(hit) = cache.get(&key, content_hash) {
        return Ok(((*hit).clone(), Some(true)));
    }
    let preds = match &model {
        ModelRef::Single(m) => m.predict_circuit(&circuit),
        ModelRef::Ensemble(e) => e.predict_circuit(&circuit),
    };
    let result = render_prediction(&key, &model, &circuit, &preds);
    cache.put(&key, content_hash, Arc::new(result.clone()));
    Ok((result, Some(false)))
}

fn named_predictions<'a>(
    preds: &[Option<f64>],
    names: impl Iterator<Item = &'a str>,
    label: &str,
) -> Vec<Value> {
    names
        .zip(preds)
        .filter_map(|(name, p)| {
            p.map(|v| {
                let mut entry = serde_json::Map::new();
                entry.insert(label, Value::String(name.to_owned()));
                entry.insert("value", json!(v));
                Value::Object(entry)
            })
        })
        .collect()
}

fn stats(request: &Request) -> Result<Value, ServeError> {
    let circuit = required_netlist(request)?;
    let k = circuit.kind_counts();
    let cg = paragraph::build_graph(&circuit);
    Ok(json!({
        "circuit": circuit.name,
        "nets": circuit.num_nets(),
        "signal_nets": k.net,
        "devices": circuit.num_devices(),
        "kinds": {
            "tran": k.tran, "tran_th": k.tran_th, "res": k.res,
            "cap": k.cap, "bjt": k.bjt, "dio": k.dio,
        },
        "graph": {
            "nodes": cg.graph.num_nodes(),
            "edges": cg.graph.num_edges(),
            "edge_types": cg.graph.num_edge_types(),
        },
    }))
}

fn erc(request: &Request) -> Result<Value, ServeError> {
    let circuit = required_netlist(request)?;
    let findings = erc_check(&circuit);
    Ok(json!({
        "circuit": circuit.name,
        "clean": findings.is_empty(),
        "findings": findings.iter().map(|f| json!(f.describe(&circuit))).collect::<Vec<_>>(),
    }))
}
