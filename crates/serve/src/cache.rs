//! Prediction cache keyed by model key plus a content hash of the
//! flattened netlist, with LRU eviction and hit/miss accounting.
//!
//! Keying on the *flattened* SPICE text means two textually different
//! decks that flatten to the same circuit (comments, blank lines,
//! hierarchy spelled differently) share one entry, while any electrical
//! change produces a new key. Cached values are the exact `result`
//! payloads served on the uncached path, so hits are bit-identical.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

/// FNV-1a content hash, used for cache keys.
pub fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for byte in text.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct Entry {
    value: Arc<Value>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(String, u64), Entry>,
    tick: u64,
}

/// Bounded LRU cache of prediction payloads.
#[derive(Debug)]
pub struct PredictionCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionCache {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a payload, counting a hit or miss.
    pub fn get(&self, model: &str, netlist_hash: u64) -> Option<Arc<Value>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        // Borrow-split: compute the key without holding a map borrow.
        match inner.map.get_mut(&(model.to_owned(), netlist_hash)) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a payload, evicting the least-recently-used entry when at
    /// capacity.
    pub fn put(&self, model: &str, netlist_hash: u64, value: Arc<Value>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let key = (model.to_owned(), netlist_hash);
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits over lookups, 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("cache lock poisoned").map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn hit_and_miss_accounting() {
        let cache = PredictionCache::new(4);
        assert!(cache.get("m", 1).is_none());
        cache.put("m", 1, Arc::new(json!({"v": 1})));
        let hit = cache.get("m", 1).unwrap();
        assert_eq!(hit["v"].as_u64(), Some(1));
        assert!(
            cache.get("other", 1).is_none(),
            "model key is part of the key"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PredictionCache::new(2);
        cache.put("m", 1, Arc::new(json!(1)));
        cache.put("m", 2, Arc::new(json!(2)));
        assert!(cache.get("m", 1).is_some()); // 1 is now fresher than 2
        cache.put("m", 3, Arc::new(json!(3)));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("m", 2).is_none(), "2 was LRU");
        assert!(cache.get("m", 1).is_some());
        assert!(cache.get("m", 3).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = PredictionCache::new(0);
        cache.put("m", 1, Arc::new(json!(1)));
        assert!(cache.get("m", 1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn fnv_distinguishes_content() {
        assert_ne!(fnv1a("mp o i vdd vdd pch"), fnv1a("mp o i vdd vdd nch"));
        assert_eq!(fnv1a("same"), fnv1a("same"));
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let cache = PredictionCache::new(1);
        cache.put("m", 1, Arc::new(json!(1)));
        cache.put("m", 2, Arc::new(json!(2)));
        assert_eq!(cache.len(), 1);
        assert!(cache.get("m", 1).is_none(), "1 was evicted by 2");
        assert_eq!(cache.get("m", 2).unwrap().as_u64(), Some(2));
    }

    #[test]
    fn zero_capacity_never_evicts_or_stores() {
        let cache = PredictionCache::new(0);
        for k in 0..10 {
            cache.put("m", k, Arc::new(json!(k)));
            assert!(cache.get("m", k).is_none());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 10);
    }

    /// Eviction follows full recency order across interleaved gets and
    /// puts, not insertion order.
    #[test]
    fn eviction_order_tracks_recency_not_insertion() {
        let cache = PredictionCache::new(3);
        cache.put("m", 1, Arc::new(json!(1)));
        cache.put("m", 2, Arc::new(json!(2)));
        cache.put("m", 3, Arc::new(json!(3)));
        // Touch in order 2, 1 — recency (oldest first) is now 3, 2, 1.
        assert!(cache.get("m", 2).is_some());
        assert!(cache.get("m", 1).is_some());
        cache.put("m", 4, Arc::new(json!(4))); // evicts 3
        assert!(cache.get("m", 3).is_none(), "3 was least recent");
        cache.put("m", 5, Arc::new(json!(5))); // evicts 2
        assert!(cache.get("m", 2).is_none(), "2 was least recent");
        assert!(cache.get("m", 1).is_some());
        assert!(cache.get("m", 4).is_some());
        assert!(cache.get("m", 5).is_some());
    }

    /// Re-putting an existing key at capacity must update in place, not
    /// evict an unrelated entry.
    #[test]
    fn put_of_existing_key_does_not_evict() {
        let cache = PredictionCache::new(2);
        cache.put("m", 1, Arc::new(json!(1)));
        cache.put("m", 2, Arc::new(json!(2)));
        cache.put("m", 1, Arc::new(json!(10)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("m", 1).unwrap().as_u64(), Some(10));
        assert!(cache.get("m", 2).is_some(), "2 must survive the re-put");
    }

    /// After eviction churn, hits + misses must equal lookups exactly
    /// and hit_rate must stay consistent with the raw counters.
    #[test]
    fn counters_stay_consistent_after_eviction() {
        let cache = PredictionCache::new(2);
        let mut lookups = 0_u64;
        for k in 0..6 {
            cache.put("m", k, Arc::new(json!(k)));
            // Current key always hits; key-2 has been evicted.
            assert!(cache.get("m", k).is_some());
            lookups += 1;
            if k >= 2 {
                assert!(cache.get("m", k - 2).is_none());
                lookups += 1;
            }
        }
        assert_eq!(cache.hits() + cache.misses(), lookups);
        assert_eq!(cache.hits(), 6);
        assert_eq!(cache.misses(), 4);
        let expected = cache.hits() as f64 / lookups as f64;
        assert!((cache.hit_rate() - expected).abs() < 1e-12);
        assert_eq!(cache.len(), 2, "capacity bound held through churn");
    }
}
