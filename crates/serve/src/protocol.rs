//! The JSON-lines request/response protocol.
//!
//! One request per line, one response line per request, in order:
//!
//! ```json
//! {"op": "predict", "id": 7, "model": "cap_ensemble", "netlist": "mp o i vdd vdd pch\n.end\n"}
//! {"id": 7, "ok": true, "cached": false, "result": {"model": "cap_ensemble", ...}}
//! ```
//!
//! Every response carries the request's `id` verbatim (or `null`), an
//! `ok` flag, and either a `result` object or a structured `error` with a
//! machine-readable `code`.

use serde_json::{json, Value};

/// Requestable operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Run model inference on a SPICE netlist.
    Predict,
    /// Circuit and graph statistics for a SPICE netlist.
    Stats,
    /// Electrical rule checks for a SPICE netlist.
    Erc,
    /// Liveness plus registry summary.
    Health,
    /// Service counters, latency histograms, queue depth, cache stats.
    Metrics,
    /// Re-scan the model directory and atomically swap the registry.
    Reload,
    /// Deliberately panic in a worker (only honoured when the service
    /// was built with `enable_debug_ops`; used to test panic isolation).
    DebugPanic,
}

impl Op {
    /// All operations, indexable by [`Op::index`].
    pub const ALL: [Op; 7] = [
        Op::Predict,
        Op::Stats,
        Op::Erc,
        Op::Health,
        Op::Metrics,
        Op::Reload,
        Op::DebugPanic,
    ];

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Predict => "predict",
            Op::Stats => "stats",
            Op::Erc => "erc",
            Op::Health => "health",
            Op::Metrics => "metrics",
            Op::Reload => "reload",
            Op::DebugPanic => "debug_panic",
        }
    }

    /// Stable position in [`Op::ALL`] (used by the metrics tables).
    pub fn index(self) -> usize {
        Op::ALL.iter().position(|&o| o == self).expect("listed")
    }

    fn from_name(name: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|o| o.name() == name)
    }
}

/// Error codes a response's `error.code` field can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, missing/invalid fields, or an unknown `op`.
    BadRequest,
    /// The netlist failed to parse or flatten.
    InvalidNetlist,
    /// The named model is not in the registry.
    UnknownModel,
    /// The request queue is full; retry later.
    Overloaded,
    /// The deadline passed before a worker picked the request up.
    DeadlineExceeded,
    /// A worker panicked or the registry reload failed.
    Internal,
}

impl ErrorCode {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::InvalidNetlist => "invalid_netlist",
            ErrorCode::UnknownModel => "unknown_model",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured service error: machine-readable code plus a message.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim in the response (`null` when absent).
    pub id: Value,
    /// Requested operation.
    pub op: Op,
    /// Model key (`predict` only); `None` selects the default.
    pub model: Option<String>,
    /// SPICE netlist text (`predict`/`stats`/`erc`).
    pub netlist: Option<String>,
    /// Per-request deadline relative to arrival; `None` uses the
    /// service default.
    pub deadline_ms: Option<u64>,
    /// When `true` the response carries a `debug` object with the
    /// request ID and per-stage latency breakdown.
    pub debug: bool,
}

impl Request {
    /// Parses one JSON line.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] with [`ErrorCode::BadRequest`] on
    /// malformed JSON, a non-object, a missing/unknown `op`, or
    /// wrongly-typed fields.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let bad = |m: String| ServeError::new(ErrorCode::BadRequest, m);
        let value: Value =
            serde_json::from_str(line).map_err(|e| bad(format!("malformed JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| bad("request must be a JSON object".into()))?;
        for (key, _) in obj.iter() {
            if !matches!(
                key.as_str(),
                "op" | "id" | "model" | "netlist" | "deadline_ms" | "debug"
            ) {
                return Err(bad(format!("unknown field '{key}'")));
            }
        }
        let op_name = obj
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field 'op'".into()))?;
        let op = Op::from_name(op_name).ok_or_else(|| bad(format!("unknown op '{op_name}'")))?;
        let get_str = |key: &str| -> Result<Option<String>, ServeError> {
            match obj.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::String(s)) => Ok(Some(s.clone())),
                Some(other) => Err(bad(format!(
                    "field '{key}' must be a string, got {}",
                    other.kind_name()
                ))),
            }
        };
        let deadline_ms = match obj.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                bad(format!(
                    "field 'deadline_ms' must be a non-negative integer, got {}",
                    v.kind_name()
                ))
            })?),
        };
        let debug = match obj.get("debug") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(b)) => *b,
            Some(other) => {
                return Err(bad(format!(
                    "field 'debug' must be a boolean, got {}",
                    other.kind_name()
                )))
            }
        };
        Ok(Request {
            id: obj.get("id").cloned().unwrap_or(Value::Null),
            op,
            model: get_str("model")?,
            netlist: get_str("netlist")?,
            deadline_ms,
            debug,
        })
    }
}

/// Builds a success response envelope. `cached` is reported for
/// `predict` so clients can observe cache behaviour; the `result`
/// payload itself is identical on both paths.
pub fn ok_response(id: &Value, result: Value, cached: Option<bool>) -> Value {
    let mut v = json!({"id": id.clone(), "ok": true, "result": result});
    if let Some(c) = cached {
        v["cached"] = Value::Bool(c);
    }
    v
}

/// Builds an error response envelope.
pub fn error_response(id: &Value, err: &ServeError) -> Value {
    json!({
        "id": id.clone(),
        "ok": false,
        "error": {"code": err.code.as_str(), "message": err.message},
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_requests() {
        let r = Request::parse(r#"{"op": "health"}"#).unwrap();
        assert_eq!(r.op, Op::Health);
        assert!(r.id.is_null() && r.model.is_none() && r.deadline_ms.is_none());
        assert!(!r.debug);

        let r = Request::parse(
            r#"{"op": "predict", "id": 3, "model": "m", "netlist": ".end", "deadline_ms": 250, "debug": true}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Predict);
        assert_eq!(r.id.as_u64(), Some(3));
        assert_eq!(r.model.as_deref(), Some("m"));
        assert_eq!(r.netlist.as_deref(), Some(".end"));
        assert_eq!(r.deadline_ms, Some(250));
        assert!(r.debug);
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "not json",
            "[1, 2]",
            r#"{"id": 1}"#,
            r#"{"op": "launch_missiles"}"#,
            r#"{"op": "predict", "netlist": 5}"#,
            r#"{"op": "predict", "deadline_ms": "soon"}"#,
            r#"{"op": "predict", "surprise": true}"#,
            r#"{"op": "predict", "debug": "yes"}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn envelopes_carry_id_and_code() {
        let id = Value::String("req-9".into());
        let ok = ok_response(&id, json!({"x": 1}), Some(true));
        assert_eq!(ok["id"].as_str(), Some("req-9"));
        assert_eq!(ok["ok"].as_bool(), Some(true));
        assert_eq!(ok["cached"].as_bool(), Some(true));
        let err = error_response(&id, &ServeError::new(ErrorCode::Overloaded, "queue full"));
        assert_eq!(err["ok"].as_bool(), Some(false));
        assert_eq!(err["error"]["code"].as_str(), Some("overloaded"));
    }

    #[test]
    fn op_indices_are_stable() {
        for (i, op) in Op::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
    }
}
