//! Node types and input features (paper Table II).
//!
//! Each device class is a node type with its own feature vector; nets are a
//! node type whose single feature is fanout. Raw features are log-scaled
//! (sizes span decades) and z-normalised with statistics computed on the
//! training set.

use paragraph_netlist::{Device, DeviceKind};
use serde::{Deserialize, Serialize};

/// Node types of the heterogeneous circuit graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeType {
    /// Signal net.
    Net,
    /// Thin-oxide transistor.
    Transistor,
    /// Thick-gate transistor (`transistor_thickgate` in Table II).
    TransistorThick,
    /// Resistor.
    Resistor,
    /// Capacitor.
    Capacitor,
    /// Diode.
    Diode,
    /// Bipolar transistor.
    Bjt,
}

impl NodeType {
    /// All node types, index order = graph type id.
    pub const ALL: [NodeType; 7] = [
        NodeType::Net,
        NodeType::Transistor,
        NodeType::TransistorThick,
        NodeType::Resistor,
        NodeType::Capacitor,
        NodeType::Diode,
        NodeType::Bjt,
    ];

    /// Graph type id.
    pub fn id(self) -> u16 {
        Self::ALL.iter().position(|t| *t == self).expect("in ALL") as u16
    }

    /// Node type of a device.
    pub fn of_device(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::Mosfet {
                thick_gate: false, ..
            } => NodeType::Transistor,
            DeviceKind::Mosfet {
                thick_gate: true, ..
            } => NodeType::TransistorThick,
            DeviceKind::Resistor => NodeType::Resistor,
            DeviceKind::Capacitor => NodeType::Capacitor,
            DeviceKind::Diode => NodeType::Diode,
            DeviceKind::Bjt { .. } => NodeType::Bjt,
        }
    }

    /// Input feature width of this node type (Table II).
    pub fn feat_dim(self) -> usize {
        match self {
            NodeType::Net => 1,             // fanout
            NodeType::Transistor => 4,      // L, NF, NFIN, MULTI
            NodeType::TransistorThick => 4, // L, NF, NFIN, MULTI
            NodeType::Resistor => 1,        // L
            NodeType::Capacitor => 1,       // MULTI
            NodeType::Diode => 1,           // NF
            NodeType::Bjt => 1,             // constant
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NodeType::Net => "net",
            NodeType::Transistor => "transistor",
            NodeType::TransistorThick => "transistor_thick",
            NodeType::Resistor => "resistor",
            NodeType::Capacitor => "capacitor",
            NodeType::Diode => "diode",
            NodeType::Bjt => "bjt",
        }
    }
}

/// Raw (pre-normalisation) feature vector of a device, log-scaled.
pub fn device_features(device: &Device) -> Vec<f32> {
    let p = &device.params;
    let log = |v: f64| (1.0 + v).ln() as f32;
    match NodeType::of_device(device.kind) {
        NodeType::Transistor | NodeType::TransistorThick => vec![
            (p.l / 1e-9).max(1.0).log10() as f32, // length in log-nm
            log(p.nf as f64),
            log(p.nfin as f64),
            log(p.multi as f64),
        ],
        NodeType::Resistor => vec![(p.l / 1e-9).max(1.0).log10() as f32],
        NodeType::Capacitor => vec![log(p.multi as f64)],
        NodeType::Diode => vec![log(p.nf as f64)],
        NodeType::Bjt => vec![1.0],
        NodeType::Net => unreachable!("nets are not devices"),
    }
}

/// Raw feature of a net: `ln(1 + fanout)`.
pub fn net_features(fanout: usize) -> Vec<f32> {
    vec![(1.0 + fanout as f32).ln()]
}

/// Per-node-type z-normalisation statistics, fitted on the training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureNorm {
    /// Per type: per-feature mean.
    pub mean: Vec<Vec<f32>>,
    /// Per type: per-feature standard deviation (floored at 1e-6).
    pub std: Vec<Vec<f32>>,
}

impl FeatureNorm {
    /// Identity normalisation for the standard schema.
    pub fn identity() -> Self {
        let mean = NodeType::ALL
            .iter()
            .map(|t| vec![0.0; t.feat_dim()])
            .collect();
        let std = NodeType::ALL
            .iter()
            .map(|t| vec![1.0; t.feat_dim()])
            .collect();
        Self { mean, std }
    }

    /// Fits means/stds over per-type raw feature rows.
    /// `rows[t]` holds all rows of node type `t` across the training set.
    pub fn fit(rows: &[Vec<Vec<f32>>]) -> Self {
        let mut norm = Self::identity();
        for (t, type_rows) in rows.iter().enumerate() {
            if type_rows.is_empty() {
                continue;
            }
            let d = type_rows[0].len();
            let n = type_rows.len() as f32;
            let mut mean = vec![0.0_f32; d];
            for row in type_rows {
                for (m, v) in mean.iter_mut().zip(row) {
                    *m += v;
                }
            }
            for m in mean.iter_mut() {
                *m /= n;
            }
            let mut var = vec![0.0_f32; d];
            for row in type_rows {
                for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                    *s += (v - m) * (v - m);
                }
            }
            let std: Vec<f32> = var.iter().map(|s| (s / n).sqrt().max(1e-6)).collect();
            norm.mean[t] = mean;
            norm.std[t] = std;
        }
        norm
    }

    /// Applies the normalisation to one raw row of type `t`.
    pub fn apply(&self, t: u16, row: &mut [f32]) {
        let (mean, std) = (&self.mean[t as usize], &self.std[t as usize]);
        for ((v, m), s) in row.iter_mut().zip(mean).zip(std) {
            *v = (*v - m) / s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_netlist::{Circuit, DeviceParams, MosPolarity};

    #[test]
    fn type_ids_are_stable() {
        assert_eq!(NodeType::Net.id(), 0);
        assert_eq!(NodeType::Bjt.id(), 6);
        for (i, t) in NodeType::ALL.iter().enumerate() {
            assert_eq!(t.id() as usize, i);
        }
    }

    #[test]
    fn device_feature_widths_match_schema() {
        let mut c = Circuit::new("t");
        let a = c.net("a");
        let b = c.net("b");
        c.add_mosfet(
            "m1",
            MosPolarity::Nmos,
            false,
            a,
            b,
            a,
            b,
            DeviceParams::default(),
        );
        c.add_resistor("r1", a, b, 1e3, 1e-6);
        c.add_capacitor("c1", a, b, 1e-15, 2);
        c.add_diode("d1", a, b, 3);
        c.add_bjt("q1", false, a, b, b);
        for d in c.devices() {
            let t = NodeType::of_device(d.kind);
            assert_eq!(device_features(d).len(), t.feat_dim(), "{}", t.name());
        }
    }

    #[test]
    fn features_are_monotone_in_size() {
        let mut c = Circuit::new("t");
        let a = c.net("a");
        c.add_mosfet(
            "m1",
            MosPolarity::Nmos,
            false,
            a,
            a,
            a,
            a,
            DeviceParams {
                nfin: 2,
                ..DeviceParams::default()
            },
        );
        c.add_mosfet(
            "m2",
            MosPolarity::Nmos,
            false,
            a,
            a,
            a,
            a,
            DeviceParams {
                nfin: 12,
                ..DeviceParams::default()
            },
        );
        let f1 = device_features(&c.devices()[0]);
        let f2 = device_features(&c.devices()[1]);
        assert!(f2[2] > f1[2]);
    }

    #[test]
    fn norm_fit_and_apply() {
        let mut rows = vec![Vec::new(); NodeType::ALL.len()];
        rows[0] = vec![vec![1.0], vec![3.0]]; // mean 2, std 1
        let norm = FeatureNorm::fit(&rows);
        let mut r = vec![3.0_f32];
        norm.apply(0, &mut r);
        assert!((r[0] - 1.0).abs() < 1e-5);
        // Types with no data keep identity.
        let mut r2 = vec![5.0_f32];
        norm.apply(3, &mut r2);
        assert_eq!(r2[0], 5.0);
    }

    #[test]
    fn net_feature_is_log_fanout() {
        assert!((net_features(0)[0] - 0.0_f32.ln_1p()).abs() < 1e-6);
        assert!(net_features(10)[0] > net_features(2)[0]);
    }
}
