//! JSON persistence for trained models.

use serde::{Deserialize, Serialize};

use paragraph_gnn::{GnnKind, GnnModel, ModelConfig};

use paragraph_exec::Precision;

use crate::baseline::BaselineStats;
use crate::features::FeatureNorm;
use crate::graphbuild::circuit_schema;
use crate::pipeline::{CompiledCell, ExecutorMode, FitConfig, TargetModel};
use crate::targets::Target;

/// Error from loading a saved model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadModelError {
    message: String,
}

impl std::fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LoadModelError {}

/// Serialisable snapshot of a [`TargetModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Target being predicted.
    pub target: Target,
    /// Training range cap.
    pub max_value: Option<f64>,
    /// GNN kind name (`ParaGraph`, `GCN`, ...).
    pub kind: String,
    /// Embedding width.
    pub embed_dim: usize,
    /// Layer depth.
    pub layers: usize,
    /// Init seed.
    pub seed: u64,
    /// Feature normalisation.
    pub norm: FeatureNorm,
    /// Training-set baseline statistics for serve-side drift
    /// monitoring. Absent in artifacts written before baseline capture
    /// existed — such snapshots still load (the field reads as `None`).
    pub baseline: Option<BaselineStats>,
    /// Pinned compiled-path precision name (`f32`/`f16`/`int8`), if the
    /// model was saved with an explicit pin. `None` (including old
    /// artifacts without the key) follows the process-wide default.
    pub precision: Option<String>,
    /// Activation-calibration site maxima for int8 scales (see
    /// `TargetModel::calibration`). Absent in pre-quantization
    /// artifacts; re-derived from the baseline at load time when
    /// possible.
    pub calibration: Option<Vec<f32>>,
    /// Flattened parameters: `(name, rows, cols, data)`.
    pub params: Vec<(String, usize, usize, Vec<f32>)>,
}

fn kind_from_name(name: &str) -> Option<GnnKind> {
    GnnKind::all().into_iter().find(|k| k.name() == name)
}

impl SavedModel {
    /// Snapshots a trained model.
    pub fn from_model(model: &TargetModel) -> Self {
        Self {
            target: model.target,
            max_value: model.max_value,
            kind: model.fit.kind.name().to_owned(),
            embed_dim: model.fit.embed_dim,
            layers: model.fit.layers,
            seed: model.fit.seed,
            norm: model.norm.clone(),
            baseline: model.baseline.clone(),
            precision: model.precision.map(|p| p.name().to_owned()),
            calibration: model.calibration.clone(),
            params: model.gnn().params().export(),
        }
    }

    /// Serialises to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialisable")
    }

    /// Restores a usable [`TargetModel`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadModelError`] on an unknown kind or mismatched
    /// parameter names/shapes.
    pub fn into_model(self) -> Result<TargetModel, LoadModelError> {
        let err = |m: String| LoadModelError { message: m };
        let kind = kind_from_name(&self.kind)
            .ok_or_else(|| err(format!("unknown kind '{}'", self.kind)))?;
        let mut config = ModelConfig::new(kind);
        config.embed_dim = self.embed_dim;
        config.layers = self.layers;
        config.fc_layers = self.target.fc_layers();
        config.seed = self.seed;
        let mut gnn = GnnModel::new(config, &circuit_schema());
        let expected = gnn.params().export().len();
        if self.params.len() != expected {
            return Err(err(format!(
                "snapshot has {} parameters, model schema expects {expected}",
                self.params.len()
            )));
        }
        gnn.params_mut().import(&self.params).map_err(err)?;
        let precision = match &self.precision {
            None => None,
            Some(name) => Some(
                Precision::parse(name).ok_or_else(|| err(format!("unknown precision '{name}'")))?,
            ),
        };
        let fit = FitConfig {
            epochs: 0,
            lr: 0.0,
            seed: self.seed,
            embed_dim: self.embed_dim,
            layers: self.layers,
            ..FitConfig::new(kind)
        };
        // Pre-quantization artifacts carry no calibration table;
        // re-derive one from the baseline so int8 serving still gets
        // static activation scales.
        let calibration = self.calibration.or_else(|| {
            crate::pipeline::derive_calibration(&gnn, &self.norm, self.baseline.as_ref())
        });
        Ok(TargetModel {
            target: self.target,
            max_value: self.max_value,
            fit,
            norm: self.norm,
            baseline: self.baseline,
            model: gnn,
            executor: ExecutorMode::Auto,
            precision,
            calibration,
            compiled: CompiledCell::default(),
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`LoadModelError`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, LoadModelError> {
        serde_json::from_str(json).map_err(|e| LoadModelError {
            message: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureNorm;
    use crate::pipeline::{FitConfig, PreparedCircuit};
    use paragraph_gnn::GnnKind;
    use paragraph_layout::LayoutConfig;
    use paragraph_netlist::parse_spice;

    fn trained() -> (TargetModel, PreparedCircuit) {
        let c = parse_spice("mp o i vdd vdd pch nf=2\nmn o i vss vss nch\n.end\n")
            .unwrap()
            .flatten()
            .unwrap();
        let pc = PreparedCircuit::new("t", c, &LayoutConfig::default());
        let mut fit = FitConfig::quick(GnnKind::ParaGraph);
        fit.epochs = 3;
        fit.embed_dim = 8;
        fit.layers = 2;
        let (model, _) = TargetModel::train(
            std::slice::from_ref(&pc),
            Target::Cap,
            None,
            fit,
            &FeatureNorm::identity(),
        );
        (model, pc)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (model, pc) = trained();
        let before = model.predict_graph(&pc.circuit, &pc.graph);
        let json = SavedModel::from_model(&model).to_json();
        let restored = SavedModel::from_json(&json).unwrap().into_model().unwrap();
        let after = restored.predict_graph(&pc.circuit, &pc.graph);
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            match (b, a) {
                (Some(b), Some(a)) => assert!((b - a).abs() <= b.abs() * 1e-5),
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    /// Baseline statistics captured at training time survive the JSON
    /// round trip exactly.
    #[test]
    fn baseline_stats_roundtrip() {
        let (model, _) = trained();
        let baseline = model
            .baseline
            .clone()
            .expect("training captures a baseline");
        assert!(baseline.labelled_nodes > 0);
        assert!(baseline.label_min.is_some() && baseline.label_max.is_some());
        let json = SavedModel::from_model(&model).to_json();
        let restored = SavedModel::from_json(&json).unwrap().into_model().unwrap();
        assert_eq!(restored.baseline.as_ref(), Some(&baseline));
    }

    /// Artifacts written before baseline capture existed — no
    /// `baseline` key at all — must still load, with `baseline = None`.
    #[test]
    fn old_artifact_without_baseline_loads() {
        let (model, pc) = trained();
        let json = SavedModel::from_model(&model).to_json();
        // Simulate a pre-baseline artifact by stripping the field from
        // the JSON text (not just nulling it).
        let mut value = serde_json::from_str::<serde_json::Value>(&json).unwrap();
        match &mut value {
            serde_json::Value::Object(fields) => {
                assert!(fields.remove("baseline").is_some(), "baseline key present");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let stripped = serde_json::to_string(&value).unwrap();
        let restored = SavedModel::from_json(&stripped)
            .unwrap()
            .into_model()
            .unwrap();
        assert!(restored.baseline.is_none());
        // And it still predicts identically.
        assert_eq!(
            restored.predict_graph(&pc.circuit, &pc.graph),
            model.predict_graph(&pc.circuit, &pc.graph)
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        let (model, _) = trained();
        let mut saved = SavedModel::from_model(&model);
        saved.kind = "NotAModel".into();
        assert!(saved.into_model().is_err());
    }

    #[test]
    fn corrupted_json_rejected() {
        assert!(SavedModel::from_json("{not json").is_err());
    }

    /// A snapshot whose parameter shapes disagree with the circuit schema
    /// must fail with a clear error, not panic.
    #[test]
    fn schema_mismatched_shapes_rejected() {
        let (model, _) = trained();
        let mut saved = SavedModel::from_model(&model);
        let (_, rows, cols, data) = &mut saved.params[0];
        *rows += 1;
        data.extend(std::iter::repeat_n(0.0, *cols));
        let err = saved.into_model().expect_err("shape mismatch accepted");
        assert!(!err.to_string().is_empty());
    }

    /// A snapshot with renamed parameters (e.g. from a different edge
    /// schema) must also be rejected.
    #[test]
    fn schema_mismatched_names_rejected() {
        let (model, _) = trained();
        let mut saved = SavedModel::from_model(&model);
        saved.params[0].0 = "no_such_parameter".into();
        assert!(saved.into_model().is_err());
    }

    /// Dropping a parameter entirely is a schema mismatch too.
    #[test]
    fn schema_missing_param_rejected() {
        let (model, _) = trained();
        let mut saved = SavedModel::from_model(&model);
        saved.params.pop();
        assert!(saved.into_model().is_err());
    }
}
