//! End-to-end pipeline: circuits -> layout truth -> graphs -> trained
//! models -> physical-unit predictions.
//!
//! One model is trained per `(GNN kind, target)` pair, as in the paper;
//! the classical baselines (linear regression and the XGBoost stand-in)
//! train on node features alone.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use paragraph_exec::{Calibration, CompileError, CompiledModel, Precision};
use paragraph_gnn::{
    GnnModel, GraphBatch, GraphTask, HeteroGraph, ModelConfig, TrainConfig, Trainer,
};
use paragraph_layout::{extract, LayoutConfig, LayoutTruth};
use paragraph_ml::{Gbt, GbtConfig, LinearRegression};
use paragraph_netlist::Circuit;
use paragraph_tensor::Tensor;
use paragraph_tensor::{Adam, Tape};

pub use paragraph_gnn::GnnKind;

use crate::baseline::BaselineStats;
use crate::features::FeatureNorm;
use crate::graphbuild::{build_graph, circuit_schema, CircuitGraph};
use crate::targets::{target_labels, Target, TargetLabels};

/// A circuit with its synthesised layout truth and graph, ready for
/// training or evaluation.
#[derive(Debug, Clone)]
pub struct PreparedCircuit {
    /// Circuit name (e.g. `t3`, `e1`).
    pub name: String,
    /// The flat schematic.
    pub circuit: Circuit,
    /// Extracted ground truth.
    pub truth: LayoutTruth,
    /// The heterogeneous graph (normalised in place by
    /// [`normalize_circuits`]).
    pub graph: CircuitGraph,
}

impl PreparedCircuit {
    /// Builds layout truth and graph for a named circuit.
    pub fn new(name: impl Into<String>, circuit: Circuit, layout: &LayoutConfig) -> Self {
        let truth = extract(&circuit, layout);
        let graph = build_graph(&circuit);
        Self {
            name: name.into(),
            circuit,
            truth,
            graph,
        }
    }

    /// Labels of `target` on this circuit.
    pub fn labels(&self, target: Target, max_value: Option<f64>) -> TargetLabels {
        target_labels(&self.circuit, &self.graph, &self.truth, target, max_value)
    }
}

/// Prepares a batch of named circuits.
pub fn prepare_circuits(
    circuits: impl IntoIterator<Item = (String, Circuit)>,
    layout: &LayoutConfig,
) -> Vec<PreparedCircuit> {
    circuits
        .into_iter()
        .map(|(name, c)| PreparedCircuit::new(name, c, layout))
        .collect()
}

/// Fits feature normalisation over the training circuits.
pub fn fit_norm(train: &[PreparedCircuit]) -> FeatureNorm {
    let num_types = circuit_schema().num_node_types();
    let mut rows: Vec<Vec<Vec<f32>>> = vec![Vec::new(); num_types];
    for pc in train {
        for (t, type_rows) in pc.graph.raw_features().iter().enumerate() {
            rows[t].extend(type_rows.iter().cloned());
        }
    }
    FeatureNorm::fit(&rows)
}

/// Applies `norm` to every circuit's graph features.
pub fn normalize_circuits(circuits: &mut [PreparedCircuit], norm: &FeatureNorm) {
    for pc in circuits {
        pc.graph.normalize(norm);
    }
}

/// GNN training configuration (paper defaults, scaled-down epochs).
#[derive(Debug, Clone, PartialEq)]
pub struct FitConfig {
    /// Model kind.
    pub kind: GnnKind,
    /// Embedding width `F` (paper: 32).
    pub embed_dim: usize,
    /// Message-passing depth `L` (paper: 5).
    pub layers: usize,
    /// Training epochs (paper: 300; scaled-down default).
    pub epochs: usize,
    /// Adam learning rate (paper: 0.01).
    pub lr: f32,
    /// Seed for parameter init.
    pub seed: u64,
    /// ParaGraph ablation: mean aggregation instead of attention.
    pub ablate_attention: bool,
    /// ParaGraph ablation: one weight matrix for all edge types.
    pub ablate_edge_types: bool,
    /// ParaGraph ablation: sum skip instead of concat.
    pub ablate_concat: bool,
    /// Attention heads for GAT/ParaGraph (paper used 1; extension).
    pub attention_heads: usize,
    /// Train with a Gaussian NLL and a `(mean, log-variance)` head,
    /// enabling per-node confidence (extension beyond the paper).
    pub uncertainty: bool,
    /// Fold this many training circuits into each block-diagonal
    /// [`paragraph_gnn::GraphBatch`] per optimizer step (1 = per-graph
    /// steps, the paper's schedule).
    pub graphs_per_batch: usize,
}

impl FitConfig {
    /// Paper-default hyper-parameters for `kind` with a laptop-scale epoch
    /// count.
    pub fn new(kind: GnnKind) -> Self {
        Self {
            kind,
            embed_dim: 32,
            layers: 5,
            epochs: 50,
            lr: 0.01,
            seed: 1,
            ablate_attention: false,
            ablate_edge_types: false,
            ablate_concat: false,
            attention_heads: 1,
            uncertainty: false,
            graphs_per_batch: 1,
        }
    }

    /// Small/fast settings for tests and examples.
    pub fn quick(kind: GnnKind) -> Self {
        Self {
            embed_dim: 16,
            layers: 3,
            epochs: 25,
            ..Self::new(kind)
        }
    }
}

/// Which inference path a [`TargetModel`] uses for its forward passes.
///
/// The tape-free compiled executor ([`paragraph_exec::CompiledModel`])
/// is bitwise-identical to the autograd tape forward, so switching modes
/// never changes predictions — only per-request allocation and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorMode {
    /// Always use the compiled executor; panics if the model cannot be
    /// compiled (an explicit opt-in for deployment).
    On,
    /// Always use the autograd tape forward (the reference path).
    Off,
    /// Use the compiled executor when compilation succeeds, otherwise
    /// fall back to the tape — further gated by the process-wide default
    /// (see [`set_executor_default`] / `PARAGRAPH_EXECUTOR`).
    #[default]
    Auto,
}

impl ExecutorMode {
    /// Parses the `--executor` flag / `PARAGRAPH_EXECUTOR` env values:
    /// `on`/`1`/`true`, `off`/`0`/`false`, or `auto`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "on" | "1" | "true" => Some(Self::On),
            "off" | "0" | "false" => Some(Self::Off),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }

    /// Flag-style name (`on`, `off`, `auto`).
    pub fn name(self) -> &'static str {
        match self {
            Self::On => "on",
            Self::Off => "off",
            Self::Auto => "auto",
        }
    }
}

/// Process-wide executor default: `u8::MAX` = not yet initialised (read
/// `PARAGRAPH_EXECUTOR` lazily), else an [`ExecutorMode`] discriminant.
static EXECUTOR_DEFAULT: AtomicU8 = AtomicU8::new(u8::MAX);

fn mode_to_u8(mode: ExecutorMode) -> u8 {
    match mode {
        ExecutorMode::On => 0,
        ExecutorMode::Off => 1,
        ExecutorMode::Auto => 2,
    }
}

/// Sets the process-wide default inference path for models whose own
/// `executor` field is [`ExecutorMode::Auto`]. Used by the CLI's
/// `--executor` flag; overrides any `PARAGRAPH_EXECUTOR` env value.
pub fn set_executor_default(mode: ExecutorMode) {
    EXECUTOR_DEFAULT.store(mode_to_u8(mode), Ordering::Relaxed);
}

/// The process-wide default inference path: whatever
/// [`set_executor_default`] stored, else the `PARAGRAPH_EXECUTOR`
/// environment variable (`on`/`off`/`auto`, also `1`/`0`), else
/// [`ExecutorMode::Auto`].
pub fn executor_default() -> ExecutorMode {
    match EXECUTOR_DEFAULT.load(Ordering::Relaxed) {
        0 => ExecutorMode::On,
        1 => ExecutorMode::Off,
        2 => ExecutorMode::Auto,
        _ => {
            let mode = std::env::var("PARAGRAPH_EXECUTOR")
                .ok()
                .and_then(|v| ExecutorMode::parse(&v))
                .unwrap_or(ExecutorMode::Auto);
            EXECUTOR_DEFAULT.store(mode_to_u8(mode), Ordering::Relaxed);
            mode
        }
    }
}

/// Process-wide precision default: `u8::MAX` = not yet initialised
/// (read `PARAGRAPH_PRECISION` lazily), else a [`Precision`]
/// discriminant.
static PRECISION_DEFAULT: AtomicU8 = AtomicU8::new(u8::MAX);

fn precision_to_u8(precision: Precision) -> u8 {
    match precision {
        Precision::F32 => 0,
        Precision::F16 => 1,
        Precision::Int8 => 2,
    }
}

/// Sets the process-wide compiled-path precision for models whose own
/// `precision` field is `None`. Used by the CLI's `--precision` flag;
/// overrides any `PARAGRAPH_PRECISION` env value.
pub fn set_precision_default(precision: Precision) {
    PRECISION_DEFAULT.store(precision_to_u8(precision), Ordering::Relaxed);
}

/// The process-wide compiled-path precision: whatever
/// [`set_precision_default`] stored, else the `PARAGRAPH_PRECISION`
/// environment variable (`f32`/`f16`/`int8`), else [`Precision::F32`].
pub fn precision_default() -> Precision {
    match PRECISION_DEFAULT.load(Ordering::Relaxed) {
        0 => Precision::F32,
        1 => Precision::F16,
        2 => Precision::Int8,
        _ => {
            let precision = std::env::var("PARAGRAPH_PRECISION")
                .ok()
                .and_then(|v| Precision::parse(&v))
                .unwrap_or(Precision::F32);
            PRECISION_DEFAULT.store(precision_to_u8(precision), Ordering::Relaxed);
            precision
        }
    }
}

/// Lazily compiled executor attached to a [`TargetModel`].
///
/// `Err` inside the lock means compilation was attempted and failed
/// with the stored reason (the model falls back to the tape path, and
/// the serving layer surfaces the reason in its health report).
/// Cloning starts a fresh cell when the original is still uncompiled; a
/// compiled executor is shared, which is sound because it snapshots the
/// parameters.
#[derive(Default)]
pub(crate) struct CompiledCell(OnceLock<Result<Arc<CompiledModel>, CompileError>>);

impl Clone for CompiledCell {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(v) = self.0.get() {
            let _ = cell.set(v.clone());
        }
        Self(cell)
    }
}

impl std::fmt::Debug for CompiledCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            None => write!(f, "CompiledCell(uncompiled)"),
            Some(Err(e)) => write!(f, "CompiledCell(failed: {e})"),
            Some(Ok(_)) => write!(f, "CompiledCell(compiled)"),
        }
    }
}

/// A trained per-target GNN model plus everything needed to apply it to a
/// fresh schematic.
#[derive(Debug, Clone)]
pub struct TargetModel {
    /// The predicted quantity.
    pub target: Target,
    /// Maximum physical label used in training (the ensemble's `max_v`).
    pub max_value: Option<f64>,
    /// Fit settings.
    pub fit: FitConfig,
    /// Feature normalisation (from the training set).
    pub norm: FeatureNorm,
    /// Training-set feature statistics and label range, captured at
    /// training time for serve-side drift monitoring. `None` on models
    /// restored from artifacts that predate baseline capture.
    pub baseline: Option<BaselineStats>,
    /// Inference path selection for this model (default
    /// [`ExecutorMode::Auto`]).
    pub executor: ExecutorMode,
    /// Numeric precision for the compiled path. `None` follows the
    /// process-wide default ([`precision_default`] /
    /// `PARAGRAPH_PRECISION`); a pinned value wins over the default, so
    /// accuracy-critical models can stay [`Precision::F32`] while the
    /// rest of a registry runs quantized.
    pub precision: Option<Precision>,
    /// Per-activation-site maxima captured at training time over
    /// synthetic graphs spanning the baseline feature ranges — the
    /// static int8 activation scales. `None` on artifacts predating
    /// calibration capture (int8 then falls back to dynamic scales).
    pub calibration: Option<Vec<f32>>,
    pub(crate) model: GnnModel,
    pub(crate) compiled: CompiledCell,
}

/// Wall-clock breakdown of one profiled circuit prediction, split at
/// the stage boundary the serving layer reports: graph construction +
/// normalisation vs the GNN forward pass (including unscale/scatter).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictProfile {
    /// Time spent building and normalising the circuit graph, µs.
    pub graph_build_us: f64,
    /// Time spent in the forward pass and prediction scatter, µs.
    pub inference_us: f64,
}

impl TargetModel {
    /// Trains a model for `target` on the prepared (already normalised)
    /// training circuits. Returns the model and the final epoch loss.
    pub fn train(
        train: &[PreparedCircuit],
        target: Target,
        max_value: Option<f64>,
        fit: FitConfig,
        norm: &FeatureNorm,
    ) -> (Self, f32) {
        let _span = paragraph_obs::span!(
            "train_target",
            target = target.name(),
            kind = fit.kind.name(),
        );
        let mut config = ModelConfig::new(fit.kind);
        config.embed_dim = fit.embed_dim;
        config.layers = fit.layers;
        config.fc_layers = target.fc_layers();
        config.seed = fit.seed;
        config.ablate_attention = fit.ablate_attention;
        config.ablate_edge_types = fit.ablate_edge_types;
        config.ablate_concat = fit.ablate_concat;
        config.attention_heads = fit.attention_heads;
        config.uncertainty_head = fit.uncertainty;
        let mut model = GnnModel::new(config, &circuit_schema());

        let tasks: Vec<GraphTask> = train
            .iter()
            .filter_map(|pc| {
                let labels = pc.labels(target, max_value);
                if labels.is_empty() {
                    return None;
                }
                Some(GraphTask::new(
                    pc.graph.graph.clone(),
                    labels.nodes.clone(),
                    Tensor::from_col(&labels.scaled),
                ))
            })
            .collect();
        let final_loss = if fit.uncertainty {
            // Gaussian-NLL loop (Trainer covers the MSE case only).
            let tasks = paragraph_gnn::batch_tasks(&tasks, fit.graphs_per_batch);
            let mut opt = Adam::new(fit.lr);
            let mut last = f32::NAN;
            for epoch in 0..fit.epochs {
                opt.lr = fit.lr * 0.98_f32.powi(epoch as i32);
                let mut total = 0.0;
                for task in &tasks {
                    let mut tape = Tape::new();
                    let out = model.predict_nodes(&mut tape, &task.graph, &task.nodes);
                    let t = tape.constant(task.labels.clone());
                    let loss = model.nll_loss(&mut tape, out, t);
                    total += tape.value(loss).item();
                    let grads = tape.backward(loss);
                    opt.step(model.params_mut(), &grads.param_grads(&tape));
                }
                last = total / tasks.len().max(1) as f32;
            }
            last
        } else {
            let mut trainer = Trainer::new(TrainConfig {
                epochs: fit.epochs,
                lr: fit.lr,
                lr_decay: 0.98,
                loss_target: None,
                graphs_per_batch: fit.graphs_per_batch,
            });
            let history = trainer.fit(&mut model, &tasks);
            history.last().map(|h| h.loss).unwrap_or(f32::NAN)
        };
        paragraph_obs::global()
            .counter(
                "paragraph_core_models_trained_total",
                &[("kind", fit.kind.name()), ("target", &target.name())],
            )
            .inc();
        let baseline = Some(BaselineStats::compute(train, target, max_value));
        let calibration = derive_calibration(&model, norm, baseline.as_ref());
        (
            Self {
                target,
                max_value,
                fit,
                norm: clone_norm(norm),
                baseline,
                executor: ExecutorMode::Auto,
                precision: None,
                calibration,
                model,
                compiled: CompiledCell::default(),
            },
            final_loss,
        )
    }

    /// Trains like [`TargetModel::train`] but evaluates on `validation`
    /// after every epoch and returns the parameters of the best epoch
    /// (early stopping with patience). Returns the model and the best
    /// validation R².
    ///
    /// # Panics
    ///
    /// Panics if `patience` is zero.
    pub fn train_with_validation(
        train: &[PreparedCircuit],
        validation: &[PreparedCircuit],
        target: Target,
        max_value: Option<f64>,
        fit: FitConfig,
        norm: &FeatureNorm,
        patience: usize,
    ) -> (Self, f64) {
        assert!(patience > 0, "patience must be positive");
        assert!(!fit.uncertainty, "validation loop supports MSE models");
        let _span = paragraph_obs::span!(
            "train_with_validation",
            target = target.name(),
            kind = fit.kind.name(),
        );
        let mut config = ModelConfig::new(fit.kind);
        config.embed_dim = fit.embed_dim;
        config.layers = fit.layers;
        config.fc_layers = target.fc_layers();
        config.seed = fit.seed;
        config.attention_heads = fit.attention_heads;
        let mut gnn = GnnModel::new(config, &circuit_schema());
        let tasks: Vec<GraphTask> = train
            .iter()
            .filter_map(|pc| {
                let labels = pc.labels(target, max_value);
                (!labels.is_empty()).then(|| {
                    GraphTask::new(
                        pc.graph.graph.clone(),
                        labels.nodes.clone(),
                        Tensor::from_col(&labels.scaled),
                    )
                })
            })
            .collect();

        let tasks = paragraph_gnn::batch_tasks(&tasks, fit.graphs_per_batch);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            lr: fit.lr,
            lr_decay: 1.0,
            loss_target: None,
            graphs_per_batch: 1,
        });
        let mut best_r2 = f64::NEG_INFINITY;
        let mut best_params = gnn.params().export();
        let mut since_best = 0;
        for _epoch in 0..fit.epochs {
            for task in &tasks {
                trainer.step(&mut gnn, task);
            }
            // Validation R² in scaled space.
            let probe = Self {
                target,
                max_value,
                fit: fit.clone(),
                norm: clone_norm(norm),
                baseline: None,              // per-epoch probe: skip the stats pass
                executor: ExecutorMode::Off, // probe once, no compile cost
                precision: None,
                calibration: None,
                model: gnn.clone(),
                compiled: CompiledCell::default(),
            };
            let r2 = evaluate_model(&probe, validation, max_value).summary().r2;
            if r2 > best_r2 {
                best_r2 = r2;
                best_params = gnn.params().export();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    break;
                }
            }
        }
        gnn.params_mut().import(&best_params).expect("own snapshot");
        let baseline = Some(BaselineStats::compute(train, target, max_value));
        let calibration = derive_calibration(&gnn, norm, baseline.as_ref());
        (
            Self {
                target,
                max_value,
                fit,
                norm: clone_norm(norm),
                baseline,
                executor: ExecutorMode::Auto,
                precision: None,
                calibration,
                model: gnn,
                compiled: CompiledCell::default(),
            },
            best_r2,
        )
    }

    /// Predicts physical-unit values for the labelled nodes of a prepared
    /// circuit; returns `(node, prediction)` pairs. Dispatches through
    /// the same executor/precision selection as the circuit paths.
    pub fn predict_nodes(&self, pc: &PreparedCircuit, nodes: Vec<u32>) -> Vec<(u32, f64)> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let preds = self.predict_scores(&pc.graph.graph, &nodes);
        nodes
            .iter()
            .zip(preds)
            .map(|(&n, p)| (n, self.target.unscale_with(self.max_value, p)))
            .collect()
    }

    /// Predicts this model's target for every applicable node of a fresh
    /// schematic (graph built and normalised internally). For `CAP` the
    /// result is indexed by net id (`None` on rails); for device targets
    /// by device id (`None` on non-MOSFETs).
    pub fn predict_circuit(&self, circuit: &Circuit) -> Vec<Option<f64>> {
        let mut cg = build_graph(circuit);
        cg.normalize(&self.norm);
        self.predict_graph(circuit, &cg)
    }

    /// [`TargetModel::predict_circuit`] with a per-stage wall-clock
    /// breakdown. Runs the exact same call chain — the returned
    /// predictions are bitwise identical to the unprofiled path.
    pub fn predict_circuit_profiled(
        &self,
        circuit: &Circuit,
    ) -> (Vec<Option<f64>>, PredictProfile) {
        let start = std::time::Instant::now();
        let mut cg = build_graph(circuit);
        cg.normalize(&self.norm);
        let graph_build_us = start.elapsed().as_secs_f64() * 1e6;
        let infer = std::time::Instant::now();
        let preds = self.predict_graph(circuit, &cg);
        (
            preds,
            PredictProfile {
                graph_build_us,
                inference_us: infer.elapsed().as_secs_f64() * 1e6,
            },
        )
    }

    /// Number of trainable scalars in the underlying GNN.
    pub fn param_count(&self) -> usize {
        self.model.params().num_scalars()
    }

    /// Same as [`TargetModel::predict_circuit`] but reusing an existing
    /// normalised graph.
    pub fn predict_graph(&self, circuit: &Circuit, cg: &CircuitGraph) -> Vec<Option<f64>> {
        let nodes = self.query_nodes(circuit, cg);
        let preds = self.predict_for(cg, nodes);
        self.scatter_predictions(circuit, cg, preds)
    }

    /// Predicts every applicable node of several fresh schematics in one
    /// forward pass over their block-diagonal [`GraphBatch`] union, then
    /// splits the results back per circuit — exactly equal to calling
    /// [`TargetModel::predict_circuit`] on each.
    pub fn predict_circuits(&self, circuits: &[&Circuit]) -> Vec<Vec<Option<f64>>> {
        if circuits.is_empty() {
            return Vec::new();
        }
        if circuits.len() == 1 {
            return vec![self.predict_circuit(circuits[0])];
        }
        let _span = paragraph_obs::span!("predict_circuits", circuits = circuits.len());
        let cgs: Vec<CircuitGraph> = circuits
            .iter()
            .map(|c| {
                let mut cg = build_graph(c);
                cg.normalize(&self.norm);
                cg
            })
            .collect();
        let graphs: Vec<&paragraph_gnn::HeteroGraph> = cgs.iter().map(|cg| &cg.graph).collect();
        let per_circuit: Vec<Vec<u32>> = circuits
            .iter()
            .zip(&cgs)
            .map(|(c, cg)| self.query_nodes(c, cg))
            .collect();
        let total: usize = per_circuit.iter().map(Vec::len).sum();
        let preds = if total == 0 {
            Vec::new()
        } else {
            self.predict_scores_batch(&graphs, &per_circuit)
        };
        let mut off = 0;
        circuits
            .iter()
            .zip(&cgs)
            .zip(per_circuit)
            .map(|((c, cg), nodes)| {
                let pairs: Vec<(u32, f64)> = nodes
                    .iter()
                    .zip(&preds[off..off + nodes.len()])
                    .map(|(&n, &p)| (n, self.target.unscale_with(self.max_value, p)))
                    .collect();
                off += nodes.len();
                self.scatter_predictions(c, cg, pairs)
            })
            .collect()
    }

    /// Global ids of the nodes this model's target applies to.
    fn query_nodes(&self, circuit: &Circuit, cg: &CircuitGraph) -> Vec<u32> {
        if self.target.on_nets() {
            cg.net_nodes()
        } else {
            circuit
                .devices()
                .iter()
                .enumerate()
                .filter(|(_, d)| d.kind.is_mosfet())
                .map(|(i, _)| cg.device_node[i])
                .collect()
        }
    }

    /// Lays `(node, value)` predictions back out per net (for net
    /// targets) or per device (for device targets), `None` where the
    /// target does not apply.
    fn scatter_predictions(
        &self,
        circuit: &Circuit,
        cg: &CircuitGraph,
        preds: Vec<(u32, f64)>,
    ) -> Vec<Option<f64>> {
        let by_node: std::collections::HashMap<u32, f64> = preds.into_iter().collect();
        if self.target.on_nets() {
            cg.net_node
                .iter()
                .map(|n| n.and_then(|node| by_node.get(&node).copied()))
                .collect()
        } else {
            (0..circuit.num_devices())
                .map(|i| by_node.get(&cg.device_node[i]).copied())
                .collect()
        }
    }

    fn predict_for(&self, cg: &CircuitGraph, nodes: Vec<u32>) -> Vec<(u32, f64)> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let preds = self.predict_scores(&cg.graph, &nodes);
        nodes
            .iter()
            .zip(preds)
            .map(|(&n, p)| (n, self.target.unscale_with(self.max_value, p)))
            .collect()
    }

    /// Predicts `(physical mean, log-space sigma)` per labelled node of a
    /// prepared circuit — only for models trained with
    /// [`FitConfig::uncertainty`]. Sigma is in the training (scaled)
    /// space: for log-trained targets, a sigma of 0.3 means roughly a
    /// x2 / ÷2 one-sigma band around the mean.
    ///
    /// # Panics
    ///
    /// Panics if the model has no uncertainty head.
    pub fn predict_nodes_uncertain(
        &self,
        pc: &PreparedCircuit,
        nodes: Vec<u32>,
    ) -> Vec<(u32, f64, f64)> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let nodes_arc = std::sync::Arc::new(nodes);
        let preds = self.model.predict_uncertain(&pc.graph.graph, &nodes_arc);
        nodes_arc
            .iter()
            .zip(preds)
            .map(|(&n, (mu, sigma))| {
                (
                    n,
                    self.target.unscale_with(self.max_value, mu),
                    sigma as f64,
                )
            })
            .collect()
    }

    /// Final node embeddings of a prepared circuit (`N x F`), e.g. for
    /// t-SNE (Figure 8).
    pub fn embeddings(&self, pc: &PreparedCircuit) -> Tensor {
        self.model.embeddings(&pc.graph.graph)
    }

    /// The underlying GNN (for parameter export).
    pub fn gnn(&self) -> &GnnModel {
        &self.model
    }

    /// The lazily compiled executor, or `None` if compilation failed.
    /// Compiles at this model's effective precision, passing the cached
    /// calibration table along for int8 activation scales.
    fn compiled(&self) -> Option<&Arc<CompiledModel>> {
        self.compiled
            .0
            .get_or_init(|| {
                let calibration = self
                    .calibration
                    .as_ref()
                    .map(|sites| Calibration::from_sites(sites.clone()));
                CompiledModel::compile_with(
                    &self.model,
                    self.effective_precision(),
                    calibration.as_ref(),
                )
                .map(Arc::new)
            })
            .as_ref()
            .ok()
    }

    /// This model's effective inference mode: its own `executor` field,
    /// with [`ExecutorMode::Auto`] resolved against the process-wide
    /// default ([`executor_default`]).
    fn effective_executor(&self) -> ExecutorMode {
        match self.executor {
            ExecutorMode::Auto => executor_default(),
            mode => mode,
        }
    }

    /// This model's effective compiled-path precision: its own
    /// `precision` field, or the process-wide default
    /// ([`precision_default`] / `PARAGRAPH_PRECISION`).
    pub fn effective_precision(&self) -> Precision {
        self.precision.unwrap_or_else(precision_default)
    }

    /// Flag-style name of the precision circuit predictions run at:
    /// the effective precision when the compiled path is in use, `f32`
    /// when predictions fall back to the tape.
    pub fn precision_name(&self) -> &'static str {
        if self.uses_executor() {
            self.effective_precision().name()
        } else {
            Precision::F32.name()
        }
    }

    /// Why the compiled path is unavailable for this model, if
    /// compilation was attempted and failed (the serving layer surfaces
    /// this in its health report). `None` while the model compiles
    /// cleanly or when the executor is forced off (nothing to fall back
    /// from).
    pub fn compile_fallback(&self) -> Option<String> {
        if self.effective_executor() == ExecutorMode::Off {
            return None;
        }
        let _ = self.compiled();
        self.compiled
            .0
            .get()
            .and_then(|r| r.as_ref().err())
            .map(|e| e.to_string())
    }

    /// Whether circuit predictions currently run on the compiled
    /// tape-free executor (vs the autograd tape). Used by the serving
    /// layer to label per-path metrics.
    pub fn uses_executor(&self) -> bool {
        match self.effective_executor() {
            ExecutorMode::Off => false,
            ExecutorMode::On => true,
            ExecutorMode::Auto => self.compiled().is_some(),
        }
    }

    /// Scaled-space forward pass, dispatched to the executor or the
    /// tape per [`TargetModel::uses_executor`]. At [`Precision::F32`]
    /// both paths are bitwise identical (pinned by the `paragraph-exec`
    /// parity suite and the golden-metrics tests); at reduced precision
    /// the compiled path tracks the tape within the documented
    /// quantization tolerances instead.
    fn predict_scores(&self, graph: &paragraph_gnn::HeteroGraph, nodes: &[u32]) -> Vec<f32> {
        match self.effective_executor() {
            ExecutorMode::Off => self
                .model
                .predict(graph, &std::sync::Arc::new(nodes.to_vec())),
            ExecutorMode::On => {
                let compiled = self.compiled().unwrap_or_else(|| {
                    panic!(
                        "executor forced on, but {}/{} does not compile",
                        self.fit.kind.name(),
                        self.target.name()
                    )
                });
                compiled.predict(graph, nodes)
            }
            ExecutorMode::Auto => match self.compiled() {
                Some(compiled) => compiled.predict(graph, nodes),
                None => self
                    .model
                    .predict(graph, &std::sync::Arc::new(nodes.to_vec())),
            },
        }
    }

    /// Scaled-space forward pass over several graphs at once, returning
    /// the per-graph predictions concatenated in member order.
    ///
    /// When the executor is active this dispatches to
    /// [`CompiledModel::predict_batch_into`], whose pooled scratch
    /// rebuilds the block-diagonal union (graph, plan, and node gather)
    /// in place — zero steady-state heap allocation per batch. The tape
    /// fallback builds a fresh [`GraphBatch`] and runs one merged
    /// forward, numerically identical (the union CSR sort is stable and
    /// every kernel is row/segment independent).
    fn predict_scores_batch(
        &self,
        graphs: &[&paragraph_gnn::HeteroGraph],
        per_graph: &[Vec<u32>],
    ) -> Vec<f32> {
        let compiled = match self.effective_executor() {
            ExecutorMode::Off => None,
            ExecutorMode::On => Some(self.compiled().unwrap_or_else(|| {
                panic!(
                    "executor forced on, but {}/{} does not compile",
                    self.fit.kind.name(),
                    self.target.name()
                )
            })),
            ExecutorMode::Auto => self.compiled(),
        };
        if let Some(compiled) = compiled {
            let mut out = Vec::new();
            compiled.predict_batch_into(graphs, per_graph, &mut out);
            return out;
        }
        let batch = GraphBatch::new(graphs);
        let mut merged = Vec::with_capacity(per_graph.iter().map(Vec::len).sum());
        for (i, nodes) in per_graph.iter().enumerate() {
            merged.extend(nodes.iter().map(|&n| batch.global_node(i, n)));
        }
        self.model
            .predict(batch.graph(), &std::sync::Arc::new(merged))
    }
}

fn clone_norm(norm: &FeatureNorm) -> FeatureNorm {
    FeatureNorm {
        mean: norm.mean.clone(),
        std: norm.std.clone(),
    }
}

/// Rows of synthetic raw features per node type in the calibration
/// workload: the observed minimum, maximum, midpoint, and a per-feature
/// spread point.
const CALIBRATION_ROWS_PER_TYPE: usize = 4;

/// Derives the int8 activation-calibration table for a freshly trained
/// model: builds a small synthetic graph whose raw features span the
/// training baseline's per-feature `[min, max]` ranges (normalised
/// exactly like live traffic) with every edge type wired, compiles the
/// model at f32, and records the per-site activation maxima.
///
/// Returns `None` when no baseline was captured or the model does not
/// compile — int8 then falls back to dynamic per-buffer scales.
pub(crate) fn derive_calibration(
    model: &GnnModel,
    norm: &FeatureNorm,
    baseline: Option<&BaselineStats>,
) -> Option<Vec<f32>> {
    let baseline = baseline?;
    let schema = circuit_schema();
    let num_types = schema.node_feat_dims.len();
    let mut types = Vec::with_capacity(num_types * CALIBRATION_ROWS_PER_TYPE);
    for t in 0..num_types {
        types.extend(std::iter::repeat_n(t as u16, CALIBRATION_ROWS_PER_TYPE));
    }
    let mut graph = HeteroGraph::new(&schema, types);
    for t in 0..num_types {
        let d = schema.node_feat_dims[t];
        let mut rows = Vec::with_capacity(CALIBRATION_ROWS_PER_TYPE);
        for r in 0..CALIBRATION_ROWS_PER_TYPE {
            let mut row = vec![0.0_f32; d];
            for (f, v) in row.iter_mut().enumerate() {
                let lo = baseline
                    .min
                    .get(t)
                    .and_then(|m| m.get(f))
                    .copied()
                    .unwrap_or(0.0) as f32;
                let hi = baseline
                    .max
                    .get(t)
                    .and_then(|m| m.get(f))
                    .copied()
                    .unwrap_or(0.0) as f32;
                *v = match r {
                    0 => lo,
                    1 => hi,
                    2 => 0.5 * (lo + hi),
                    _ => lo + (hi - lo) * ((f + 1) as f32 / (d + 1) as f32),
                };
            }
            norm.apply(t as u16, &mut row);
            rows.push(row);
        }
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        graph.set_features(t as u16, Tensor::from_rows(&refs));
    }
    let n = (num_types * CALIBRATION_ROWS_PER_TYPE) as u32;
    for e in 0..schema.num_edge_types {
        let src: Vec<u32> = (0..n).collect();
        let dst: Vec<u32> = (0..n).map(|i| (i + 1 + e as u32) % n).collect();
        graph.set_edges(e, src, dst);
    }
    graph.validate().ok()?;
    let exec = CompiledModel::compile(model).ok()?;
    let nodes: Vec<u32> = (0..n).collect();
    Some(exec.calibrate(&[(&graph, nodes)]).sites().to_vec())
}

/// One independent training run for [`train_models`]: a `(target,
/// max_value, fit)` triple, mirroring [`TargetModel::train`]'s
/// arguments.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// The predicted quantity.
    pub target: Target,
    /// Upper capacitance bound (the ensemble's `max_v`), if any.
    pub max_value: Option<f64>,
    /// Fit settings for this run.
    pub fit: FitConfig,
}

impl TrainSpec {
    /// Creates a spec without a `max_value` bound.
    pub fn new(target: Target, fit: FitConfig) -> Self {
        Self {
            target,
            max_value: None,
            fit,
        }
    }
}

/// Trains every spec's model concurrently on the shared
/// [`paragraph_runtime::global`] worker pool — one pool job per
/// `(kind, target)` model, so independent models (e.g. the paper's 16+
/// per-experiment runs, or the four ensemble members) no longer train
/// one after another.
///
/// Results are returned **in spec order** regardless of which run
/// finishes first, and each run is bit-identical to calling
/// [`TargetModel::train`] with the same arguments sequentially: the
/// runs share no mutable state, only the read-only training circuits.
pub fn train_models(
    train: &[PreparedCircuit],
    specs: &[TrainSpec],
    norm: &FeatureNorm,
) -> Vec<(TargetModel, f32)> {
    paragraph_runtime::global().map(specs, |_, spec| {
        TargetModel::train(train, spec.target, spec.max_value, spec.fit.clone(), norm)
    })
}

/// `(prediction, truth)` pairs in both training (log) space and physical
/// units.
#[derive(Debug, Clone, Default)]
pub struct EvalPairs {
    /// Log-space pairs.
    pub scaled: Vec<(f64, f64)>,
    /// Physical-unit pairs.
    pub physical: Vec<(f64, f64)>,
}

impl EvalPairs {
    /// R² in log space, MAE and MAPE in physical units — the paper's
    /// metric convention for Figure 6.
    pub fn summary(&self) -> EvalSummary {
        let (ps, ts): (Vec<f64>, Vec<f64>) = self.scaled.iter().cloned().unzip();
        let (pp, tp): (Vec<f64>, Vec<f64>) = self.physical.iter().cloned().unzip();
        EvalSummary {
            r2: paragraph_ml::r_squared(&ps, &ts),
            mae: paragraph_ml::mae(&pp, &tp),
            mape: paragraph_ml::mape(&pp, &tp),
            count: self.scaled.len(),
        }
    }
}

/// Headline metrics of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// R² in the scaled (log) space.
    pub r2: f64,
    /// Mean absolute error in physical units.
    pub mae: f64,
    /// Mean absolute percentage error (physical), percent.
    pub mape: f64,
    /// Number of evaluated points.
    pub count: usize,
}

/// Evaluates a trained model on test circuits over nodes with labels
/// `<= eval_max` (the paper evaluates range models within their range).
pub fn evaluate_model(
    model: &TargetModel,
    test: &[PreparedCircuit],
    eval_max: Option<f64>,
) -> EvalPairs {
    let mut pairs = EvalPairs::default();
    for pc in test {
        let labels = pc.labels(model.target, eval_max);
        if labels.is_empty() {
            continue;
        }
        let preds = model.predict_nodes(pc, labels.nodes.clone());
        for ((_, pred), (scaled_t, phys_t)) in
            preds.iter().zip(labels.scaled.iter().zip(&labels.physical))
        {
            pairs.scaled.push((
                model.target.scale_with(model.max_value, *pred) as f64,
                *scaled_t as f64,
            ));
            pairs.physical.push((*pred, *phys_t));
        }
    }
    pairs
}

// ---------------------------------------------------------------------
// Classical baselines (node features only, as in the paper's Figure 6)
// ---------------------------------------------------------------------

/// Which classical model a baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Ordinary least squares.
    Linear,
    /// Gradient-boosted trees (XGBoost stand-in).
    Xgb,
}

impl BaselineKind {
    /// Display name matching the paper's Figure 6.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Linear => "Linear",
            BaselineKind::Xgb => "XGB",
        }
    }
}

/// A trained classical baseline for one target.
#[derive(Debug, Clone)]
pub struct BaselineModel {
    /// The predicted quantity.
    pub target: Target,
    /// Model flavour.
    pub kind: BaselineKind,
    /// Maximum physical label used in training.
    pub max_value: Option<f64>,
    linear: Option<LinearRegression>,
    gbt: Option<Gbt>,
}

/// Node-feature rows for the labelled nodes of a circuit. Device targets
/// get the transistor features; the net target gets the fanout feature
/// (padded to the transistor width so both transistor flavours share one
/// model).
fn baseline_features(pc: &PreparedCircuit, labels: &TargetLabels) -> Vec<Vec<f64>> {
    let g = &pc.graph.graph;
    labels
        .nodes
        .iter()
        .map(|&node| {
            let t = g.node_type(node as usize);
            let idx = g
                .nodes_of_type(t)
                .binary_search(&node)
                .expect("node in its type list");
            let row = g.features(t).row(idx);
            let mut out: Vec<f64> = row.iter().map(|&v| v as f64).collect();
            out.resize(4, 0.0); // common width across node types
            out
        })
        .collect()
}

impl BaselineModel {
    /// Trains on the labelled nodes of the training circuits (in log
    /// space, like the GNNs).
    pub fn train(
        train: &[PreparedCircuit],
        target: Target,
        max_value: Option<f64>,
        kind: BaselineKind,
    ) -> Self {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for pc in train {
            let labels = pc.labels(target, max_value);
            x.extend(baseline_features(pc, &labels));
            y.extend(labels.scaled.iter().map(|&v| v as f64));
        }
        let (linear, gbt) = match kind {
            BaselineKind::Linear => (
                Some(LinearRegression::fit(&x, &y, 1e-6).expect("solvable normal equations")),
                None,
            ),
            BaselineKind::Xgb => (None, Some(Gbt::fit(&x, &y, GbtConfig::default()))),
        };
        Self {
            target,
            kind,
            max_value,
            linear,
            gbt,
        }
    }

    /// Evaluates on test circuits, mirroring [`evaluate_model`].
    ///
    /// Evaluation labels are scaled with *this model's* training range so
    /// scaled-space metrics are apples-to-apples against the GNNs.
    pub fn evaluate(&self, test: &[PreparedCircuit], eval_max: Option<f64>) -> EvalPairs {
        let mut pairs = EvalPairs::default();
        for pc in test {
            let mut labels = pc.labels(self.target, eval_max);
            if labels.is_empty() {
                continue;
            }
            // Re-scale labels with the model's own range.
            for (s, phys) in labels.scaled.iter_mut().zip(&labels.physical) {
                *s = self.target.scale_with(self.max_value, *phys);
            }
            let x = baseline_features(pc, &labels);
            let preds_scaled = match self.kind {
                BaselineKind::Linear => self.linear.as_ref().expect("fitted").predict(&x),
                BaselineKind::Xgb => self.gbt.as_ref().expect("fitted").predict(&x),
            };
            for (p, (s, phys)) in preds_scaled
                .iter()
                .zip(labels.scaled.iter().zip(&labels.physical))
            {
                pairs.scaled.push((*p, *s as f64));
                pairs
                    .physical
                    .push((self.target.unscale_with(self.max_value, *p as f32), *phys));
            }
        }
        pairs
    }

    /// Predicts physical values for the labelled nodes of one circuit,
    /// returned as `(node, value)` pairs.
    pub fn predict_labelled(&self, pc: &PreparedCircuit) -> Vec<(u32, f64)> {
        let labels = pc.labels(self.target, None);
        let x = baseline_features(pc, &labels);
        let preds = match self.kind {
            BaselineKind::Linear => self.linear.as_ref().expect("fitted").predict(&x),
            BaselineKind::Xgb => self.gbt.as_ref().expect("fitted").predict(&x),
        };
        labels
            .nodes
            .iter()
            .zip(preds)
            .map(|(&n, p)| (n, self.target.unscale_with(self.max_value, p as f32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_netlist::parse_spice;

    fn tiny_dataset() -> Vec<PreparedCircuit> {
        // A few small, different circuits.
        let sources = [
            ("a", "mp o i vdd vdd pch nf=2\nmn o i vss vss nch\nr1 o f 10k\n.end\n"),
            (
                "b",
                "mp1 x i vdd vdd pch nf=4\nmn1 x i vss vss nch nf=2\nmp2 y x vdd vdd pch\nmn2 y x vss vss nch\n.end\n",
            ),
            ("c", "mn1 d1 g1 s1 vss nch nfin=8\nmn2 d2 g1 d1 vss nch nfin=4\nc1 d2 vss 20f\n.end\n"),
        ];
        let mut prepared: Vec<PreparedCircuit> = sources
            .iter()
            .map(|(name, src)| {
                let c = parse_spice(src).unwrap().flatten().unwrap();
                PreparedCircuit::new(*name, c, &LayoutConfig::default())
            })
            .collect();
        let norm = fit_norm(&prepared);
        normalize_circuits(&mut prepared, &norm);
        prepared
    }

    #[test]
    fn training_reduces_loss_and_predicts_positive_caps() {
        let prepared = tiny_dataset();
        let norm = FeatureNorm::identity();
        let (model, loss) = TargetModel::train(
            &prepared,
            Target::Cap,
            None,
            FitConfig::quick(GnnKind::ParaGraph),
            &norm,
        );
        assert!(loss.is_finite());
        let caps = model.predict_graph(&prepared[0].circuit, &prepared[0].graph);
        let signal_preds: Vec<f64> = caps.into_iter().flatten().collect();
        assert_eq!(signal_preds.len(), 3); // signal nets i, o, f
        assert!(signal_preds.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn evaluate_produces_pairs() {
        let prepared = tiny_dataset();
        let norm = FeatureNorm::identity();
        let (model, _) = TargetModel::train(
            &prepared[..2],
            Target::Sa,
            None,
            FitConfig::quick(GnnKind::GraphSage),
            &norm,
        );
        let pairs = evaluate_model(&model, &prepared[2..], None);
        assert_eq!(pairs.scaled.len(), 2); // two mosfets in circuit c
        let s = pairs.summary();
        assert!(s.mae >= 0.0 && s.count == 2);
    }

    #[test]
    fn baselines_train_and_evaluate() {
        let prepared = tiny_dataset();
        for kind in [BaselineKind::Linear, BaselineKind::Xgb] {
            let model = BaselineModel::train(&prepared[..2], Target::Cap, None, kind);
            let pairs = model.evaluate(&prepared[2..], None);
            assert!(!pairs.scaled.is_empty(), "{}", kind.name());
            assert!(pairs.physical.iter().all(|(p, _)| *p > 0.0));
        }
    }

    /// `predict_circuits` runs one forward pass over the block-diagonal
    /// batch; the per-circuit split-back must equal `predict_circuit`
    /// float for float, for net and device targets alike.
    #[test]
    fn batched_circuit_prediction_matches_sequential() {
        let prepared = tiny_dataset();
        let norm = FeatureNorm::identity();
        for (target, kind) in [
            (Target::Cap, GnnKind::ParaGraph),
            (Target::Sa, GnnKind::Gcn),
        ] {
            let mut fit = FitConfig::quick(kind);
            fit.epochs = 3;
            let (model, _) = TargetModel::train(&prepared, target, None, fit, &norm);
            let circuits: Vec<&paragraph_netlist::Circuit> =
                prepared.iter().map(|pc| &pc.circuit).collect();
            let batched = model.predict_circuits(&circuits);
            assert_eq!(batched.len(), circuits.len());
            for (pc, got) in prepared.iter().zip(&batched) {
                let sequential = model.predict_circuit(&pc.circuit);
                assert_eq!(&sequential, got, "{} on {}", target.name(), pc.name);
            }
        }
        // Degenerate widths pass through the single-circuit path.
        let mut fit = FitConfig::quick(GnnKind::Gcn);
        fit.epochs = 1;
        let (model, _) = TargetModel::train(&prepared, Target::Cap, None, fit, &norm);
        assert!(model.predict_circuits(&[]).is_empty());
        let one = model.predict_circuits(&[&prepared[0].circuit]);
        assert_eq!(one[0], model.predict_circuit(&prepared[0].circuit));
    }

    /// Training with `graphs_per_batch > 1` must still learn (the loss
    /// schedule changes, so only convergence is asserted, not parity).
    #[test]
    fn batched_training_converges() {
        let prepared = tiny_dataset();
        let norm = FeatureNorm::identity();
        let mut fit = FitConfig::quick(GnnKind::ParaGraph);
        fit.graphs_per_batch = 3;
        let (model, loss) = TargetModel::train(&prepared, Target::Cap, None, fit, &norm);
        assert!(loss.is_finite());
        let caps = model.predict_graph(&prepared[0].circuit, &prepared[0].graph);
        assert!(caps.into_iter().flatten().all(|c| c > 0.0));
    }

    #[test]
    fn norm_fitting_covers_types_present() {
        let prepared = tiny_dataset();
        let norm = fit_norm(&prepared);
        // Net features were normalised with real stats.
        assert_ne!(norm.std[0], vec![1.0]);
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use paragraph_layout::LayoutConfig;
    use paragraph_netlist::parse_spice;

    fn circuits(n: usize, seed: u64) -> Vec<PreparedCircuit> {
        (0..n)
            .map(|i| {
                let src = format!(
                    "mp{i} o{i} i{i} vdd vdd pch nf={}\nmn{i} o{i} i{i} vss vss nch nfin={}\nr{i} o{i} f{i} 10k\n",
                    1 + (seed as usize + i) % 4,
                    1 + (seed as usize + i) % 8,
                );
                let c = parse_spice(&format!("{src}.end\n")).unwrap().flatten().unwrap();
                PreparedCircuit::new(format!("v{i}"), c, &LayoutConfig::default())
            })
            .collect()
    }

    #[test]
    fn validation_training_returns_best_epoch() {
        let mut train = circuits(3, 1);
        let mut val = circuits(2, 9);
        let norm = fit_norm(&train);
        normalize_circuits(&mut train, &norm);
        normalize_circuits(&mut val, &norm);
        let mut fit = FitConfig::quick(GnnKind::ParaGraph);
        fit.epochs = 10;
        let (mut model, best_r2) =
            TargetModel::train_with_validation(&train, &val, Target::Sa, None, fit, &norm, 3);
        assert!(best_r2.is_finite());
        // The per-epoch probes score on the f32 tape, so the equality
        // below only holds at f32 — pin it so a process-wide
        // PARAGRAPH_PRECISION override (the quantized CI job) cannot
        // reroute the final evaluation through a quantized path.
        model.precision = Some(Precision::F32);
        // The returned model's validation R² equals the reported best.
        let again = evaluate_model(&model, &val, None).summary().r2;
        assert!((again - best_r2).abs() < 1e-6, "{again} vs {best_r2}");
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_rejected() {
        let train = circuits(1, 2);
        let norm = fit_norm(&train);
        let fit = FitConfig::quick(GnnKind::Gcn);
        let _ = TargetModel::train_with_validation(&train, &train, Target::Sa, None, fit, &norm, 0);
    }
}
