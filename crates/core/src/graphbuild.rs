//! Schematic-to-graph conversion (paper §II-B).
//!
//! Devices *and* nets become nodes; every terminal connection becomes two
//! directed edges of opposing types; edge types are keyed by device class
//! and terminal (`net -> transistor_gate`, `transistor_gate -> net`, ...);
//! connections to supply and ground rails are dropped.

use paragraph_gnn::{GraphSchema, HeteroGraph};
use paragraph_netlist::{Circuit, DeviceId, DeviceKind, NetClass, NetId, Terminal};
use paragraph_tensor::Tensor;

use crate::features::{device_features, net_features, FeatureNorm, NodeType};

/// Terminal classes that distinguish edge types (gate vs source vs drain
/// etc.). Symmetric two-terminal passives collapse to a single `Pin`
/// class; diodes keep anode/cathode distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerminalClass {
    /// MOSFET gate.
    Gate,
    /// MOSFET source.
    Source,
    /// MOSFET drain.
    Drain,
    /// MOSFET bulk.
    Bulk,
    /// Resistor/capacitor pin (symmetric).
    Pin,
    /// Diode anode.
    Anode,
    /// Diode cathode.
    Cathode,
    /// BJT collector.
    Collector,
    /// BJT base.
    Base,
    /// BJT emitter.
    Emitter,
}

/// One `(device node type, terminal class)` pair; each pair yields two
/// directed edge types.
pub const EDGE_CLASSES: [(NodeType, TerminalClass); 15] = [
    (NodeType::Transistor, TerminalClass::Gate),
    (NodeType::Transistor, TerminalClass::Source),
    (NodeType::Transistor, TerminalClass::Drain),
    (NodeType::Transistor, TerminalClass::Bulk),
    (NodeType::TransistorThick, TerminalClass::Gate),
    (NodeType::TransistorThick, TerminalClass::Source),
    (NodeType::TransistorThick, TerminalClass::Drain),
    (NodeType::TransistorThick, TerminalClass::Bulk),
    (NodeType::Resistor, TerminalClass::Pin),
    (NodeType::Capacitor, TerminalClass::Pin),
    (NodeType::Diode, TerminalClass::Anode),
    (NodeType::Diode, TerminalClass::Cathode),
    (NodeType::Bjt, TerminalClass::Collector),
    (NodeType::Bjt, TerminalClass::Base),
    (NodeType::Bjt, TerminalClass::Emitter),
];

/// Total directed edge types: one `net -> terminal` and one
/// `terminal -> net` per class.
pub const NUM_EDGE_TYPES: usize = EDGE_CLASSES.len() * 2;

fn terminal_class(kind: DeviceKind, terminal: Terminal) -> TerminalClass {
    match (kind, terminal) {
        (DeviceKind::Mosfet { .. }, Terminal::Gate) => TerminalClass::Gate,
        (DeviceKind::Mosfet { .. }, Terminal::Source) => TerminalClass::Source,
        (DeviceKind::Mosfet { .. }, Terminal::Drain) => TerminalClass::Drain,
        (DeviceKind::Mosfet { .. }, Terminal::Bulk) => TerminalClass::Bulk,
        (DeviceKind::Resistor | DeviceKind::Capacitor, _) => TerminalClass::Pin,
        (DeviceKind::Diode, Terminal::Pos) => TerminalClass::Anode,
        (DeviceKind::Diode, Terminal::Neg) => TerminalClass::Cathode,
        (DeviceKind::Bjt { .. }, Terminal::Collector) => TerminalClass::Collector,
        (DeviceKind::Bjt { .. }, Terminal::Base) => TerminalClass::Base,
        (DeviceKind::Bjt { .. }, Terminal::Emitter) => TerminalClass::Emitter,
        (kind, terminal) => unreachable!("no class for {kind:?}/{terminal:?}"),
    }
}

/// Human-readable name of a directed edge type, in the paper's notation
/// (`net -> transistor_gate`, `transistor_gate -> net`, ...).
pub fn edge_type_name(edge_type: usize) -> String {
    let (device, class) = EDGE_CLASSES[edge_type / 2];
    let device_to_net = edge_type % 2 == 1;
    let terminal = format!("{}_{:?}", device.name(), class).to_lowercase();
    if device_to_net {
        format!("{terminal} -> net")
    } else {
        format!("net -> {terminal}")
    }
}

/// Edge-type index for `(device type, terminal class)`, with
/// `device_to_net` selecting the direction.
pub fn edge_type(device: NodeType, class: TerminalClass, device_to_net: bool) -> usize {
    let idx = EDGE_CLASSES
        .iter()
        .position(|(d, c)| *d == device && *c == class)
        .expect("valid edge class");
    idx * 2 + usize::from(device_to_net)
}

/// The fixed schema shared by every circuit graph.
pub fn circuit_schema() -> GraphSchema {
    GraphSchema {
        node_feat_dims: NodeType::ALL.iter().map(|t| t.feat_dim()).collect(),
        num_edge_types: NUM_EDGE_TYPES,
    }
}

/// A circuit converted to a heterogeneous graph, with the net/device <->
/// node correspondence.
#[derive(Debug, Clone)]
pub struct CircuitGraph {
    /// The graph (raw, un-normalised features until
    /// [`CircuitGraph::normalize`] is applied).
    pub graph: HeteroGraph,
    /// Graph node per net (`None` for supply/ground).
    pub net_node: Vec<Option<u32>>,
    /// Graph node per device.
    pub device_node: Vec<u32>,
    /// Inverse: net id of each graph node, when it is a net node.
    pub net_of_node: Vec<Option<NetId>>,
    /// Inverse: device id of each graph node, when it is a device node.
    pub device_of_node: Vec<Option<DeviceId>>,
    /// Raw per-type feature rows (kept so normalisation can be re-applied).
    raw_features: Vec<Vec<Vec<f32>>>,
}

impl CircuitGraph {
    /// Global node ids of all net nodes.
    pub fn net_nodes(&self) -> Vec<u32> {
        self.net_node.iter().flatten().copied().collect()
    }

    /// Global node ids of all device nodes whose device satisfies `pred`.
    pub fn device_nodes_where(
        &self,
        circuit: &Circuit,
        mut pred: impl FnMut(DeviceId) -> bool,
    ) -> Vec<u32> {
        (0..circuit.num_devices())
            .filter(|&i| pred(DeviceId(i as u32)))
            .map(|i| self.device_node[i])
            .collect()
    }

    /// Raw feature rows per node type (training-set statistics are fitted
    /// over these).
    pub fn raw_features(&self) -> &Vec<Vec<Vec<f32>>> {
        &self.raw_features
    }

    /// Applies feature normalisation to the graph in place (idempotent
    /// with respect to the stored raw features: always starts from raw).
    pub fn normalize(&mut self, norm: &FeatureNorm) {
        for (t, rows) in self.raw_features.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let d = rows[0].len();
            let mut m = Tensor::zeros(rows.len(), d);
            for (i, row) in rows.iter().enumerate() {
                let mut r = row.clone();
                norm.apply(t as u16, &mut r);
                m.row_mut(i).copy_from_slice(&r);
            }
            self.graph.set_features(t as u16, m);
        }
    }
}

/// Computes the raw per-type feature rows of a circuit **without**
/// building the graph — exactly the rows [`build_graph`] would store
/// (signal nets first in net-id order, then devices in device order).
///
/// This is the cheap path for observers that only need feature
/// statistics (e.g. the serving drift monitor, which compares every
/// incoming circuit — cache hits included — against the training
/// baseline): no edges, no tensors, no allocation beyond the rows.
pub fn raw_feature_rows(circuit: &Circuit) -> Vec<Vec<Vec<f32>>> {
    let mut raw: Vec<Vec<Vec<f32>>> = vec![Vec::new(); NodeType::ALL.len()];
    for (id, net) in circuit.nets().iter().enumerate() {
        if net.class == NetClass::Signal {
            raw[NodeType::Net.id() as usize].push(net_features(circuit.fanout(NetId(id as u32))));
        }
    }
    for dev in circuit.devices() {
        raw[NodeType::of_device(dev.kind).id() as usize].push(device_features(dev));
    }
    raw
}

/// Builds the heterogeneous graph of a flat circuit (paper §II-B).
///
/// # Examples
///
/// ```
/// use paragraph::build_graph;
/// use paragraph_netlist::parse_spice;
///
/// // The paper's Figure 3 example: an inverter has 3 signal-net nodes
/// // (in, out — rails dropped) + 2 transistor nodes.
/// let c = parse_spice(
///     "mp out in vdd vdd pch\nmn out in vss vss nch\n.end\n")?.flatten()?;
/// let cg = build_graph(&c);
/// assert_eq!(cg.graph.num_nodes(), 4); // in, out + 2 devices
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_graph(circuit: &Circuit) -> CircuitGraph {
    let schema = circuit_schema();

    // Assign node ids: signal nets first, then devices.
    let mut node_types = Vec::new();
    let mut net_node = vec![None; circuit.num_nets()];
    let mut net_of_node = Vec::new();
    let mut device_of_node = Vec::new();
    for (id, net) in circuit.nets().iter().enumerate() {
        if net.class == NetClass::Signal {
            net_node[id] = Some(node_types.len() as u32);
            node_types.push(NodeType::Net.id());
            net_of_node.push(Some(NetId(id as u32)));
            device_of_node.push(None);
        }
    }
    let mut device_node = Vec::with_capacity(circuit.num_devices());
    for (id, dev) in circuit.devices().iter().enumerate() {
        device_node.push(node_types.len() as u32);
        node_types.push(NodeType::of_device(dev.kind).id());
        net_of_node.push(None);
        device_of_node.push(Some(DeviceId(id as u32)));
    }

    let mut graph = HeteroGraph::new(&schema, node_types);

    // Features, grouped per type in graph row order.
    let mut raw: Vec<Vec<Vec<f32>>> = vec![Vec::new(); NodeType::ALL.len()];
    for (id, net) in circuit.nets().iter().enumerate() {
        if net.class == NetClass::Signal {
            raw[NodeType::Net.id() as usize].push(net_features(circuit.fanout(NetId(id as u32))));
        }
    }
    for dev in circuit.devices() {
        raw[NodeType::of_device(dev.kind).id() as usize].push(device_features(dev));
    }
    for (t, rows) in raw.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let d = rows[0].len();
        let mut m = Tensor::zeros(rows.len(), d);
        for (i, row) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(row);
        }
        graph.set_features(t as u16, m);
    }

    // Edges: two directed edges per (signal) terminal connection.
    let mut src: Vec<Vec<u32>> = vec![Vec::new(); NUM_EDGE_TYPES];
    let mut dst: Vec<Vec<u32>> = vec![Vec::new(); NUM_EDGE_TYPES];
    for (dev_id, dev) in circuit.devices().iter().enumerate() {
        let dev_node = device_node[dev_id];
        let dev_type = NodeType::of_device(dev.kind);
        for (terminal, net) in &dev.conns {
            let Some(net_node_id) = net_node[net.0 as usize] else {
                continue; // rail connection: dropped, per the paper
            };
            let class = terminal_class(dev.kind, *terminal);
            let to_dev = edge_type(dev_type, class, false);
            src[to_dev].push(net_node_id);
            dst[to_dev].push(dev_node);
            let to_net = edge_type(dev_type, class, true);
            src[to_net].push(dev_node);
            dst[to_net].push(net_node_id);
        }
    }
    for (t, (s, d)) in src.into_iter().zip(dst).enumerate() {
        graph.set_edges(t, s, d);
    }
    graph.union_edges();

    CircuitGraph {
        graph,
        net_node,
        device_node,
        net_of_node,
        device_of_node,
        raw_features: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragraph_netlist::parse_spice;

    fn inverter() -> Circuit {
        parse_spice("mp out in vdd vdd pch\nmn out in vss vss nch\n.end\n")
            .unwrap()
            .flatten()
            .unwrap()
    }

    /// The paper's Figure 3: the inverter graph has net nodes for in/out
    /// only, and gate edges for both transistors.
    #[test]
    fn figure3_inverter_graph() {
        let c = inverter();
        let cg = build_graph(&c);
        assert_eq!(cg.graph.num_nodes(), 4);
        // Rail connections dropped: PMOS source+bulk (vdd) and NMOS
        // source+bulk (vss) produce no edges. Each transistor has gate +
        // drain = 2 connections x 2 directions = 4 edges; 2 transistors.
        assert_eq!(cg.graph.num_edges(), 8);
        cg.graph.validate().unwrap();
    }

    #[test]
    fn every_connection_yields_two_opposing_edges() {
        let c = inverter();
        let cg = build_graph(&c);
        // For each edge type pair (2k, 2k+1) the edges mirror each other.
        for k in 0..EDGE_CLASSES.len() {
            let fwd = cg.graph.edges(2 * k);
            let bwd = cg.graph.edges(2 * k + 1);
            assert_eq!(fwd.len(), bwd.len());
            for i in 0..fwd.len() {
                assert_eq!(fwd.src[i], bwd.dst[i]);
                assert_eq!(fwd.dst[i], bwd.src[i]);
            }
        }
    }

    #[test]
    fn gate_and_drain_edges_have_distinct_types() {
        let c = inverter();
        let cg = build_graph(&c);
        let gate = edge_type(NodeType::Transistor, TerminalClass::Gate, false);
        let drain = edge_type(NodeType::Transistor, TerminalClass::Drain, false);
        assert_ne!(gate, drain);
        assert_eq!(cg.graph.edges(gate).len(), 2); // both gates on 'in'
        assert_eq!(cg.graph.edges(drain).len(), 2); // both drains on 'out'
    }

    #[test]
    fn schema_is_consistent() {
        let s = circuit_schema();
        assert_eq!(s.num_node_types(), 7);
        assert_eq!(s.num_edge_types, 30);
    }

    #[test]
    fn mixed_devices_graph_validates() {
        let src = "\
mp out in vdd vdd pch nf=2\n\
mn out in vss vss nch\n\
mh pad out vss vss nch_hv l=150n\n\
r1 out fb 10k\n\
c1 fb vss 50f\n\
d1 pad vdd dnom nf=4\n\
q1 vss bias ref pnp\n.end\n";
        let c = parse_spice(src).unwrap().flatten().unwrap();
        let cg = build_graph(&c);
        cg.graph.validate().unwrap();
        // in, out, pad, fb, bias, ref are signal nets.
        assert_eq!(cg.net_nodes().len(), 6);
        // All 7 devices present.
        assert_eq!(cg.device_node.len(), 7);
        // Thick-gate transistor uses its own edge types.
        let thick_gate = edge_type(NodeType::TransistorThick, TerminalClass::Gate, false);
        assert_eq!(cg.graph.edges(thick_gate).len(), 1);
    }

    #[test]
    fn normalization_applies_from_raw() {
        let c = inverter();
        let mut cg = build_graph(&c);
        let before = cg.graph.features(NodeType::Net.id()).clone();
        let norm = FeatureNorm::identity();
        cg.normalize(&norm);
        assert_eq!(&before, cg.graph.features(NodeType::Net.id()));
        // A shifting norm changes features, and re-applying identity
        // restores them (normalize always starts from raw).
        let mut shift = FeatureNorm::identity();
        shift.mean[0] = vec![1.0];
        cg.normalize(&shift);
        assert_ne!(&before, cg.graph.features(NodeType::Net.id()));
        cg.normalize(&norm);
        assert_eq!(&before, cg.graph.features(NodeType::Net.id()));
    }

    /// The graph-free feature path must produce exactly the rows the
    /// graph builder stores, for every node type.
    #[test]
    fn raw_feature_rows_match_built_graph() {
        let src = "\
mp out in vdd vdd pch nf=2\n\
mn out in vss vss nch\n\
r1 out fb 10k\n\
c1 fb vss 50f\n\
d1 out vdd dnom\n.end\n";
        let c = parse_spice(src).unwrap().flatten().unwrap();
        assert_eq!(&raw_feature_rows(&c), build_graph(&c).raw_features());
    }

    #[test]
    fn dangling_signal_net_has_node() {
        let mut c = Circuit::new("t");
        c.net("floating");
        let cg = build_graph(&c);
        assert_eq!(cg.graph.num_nodes(), 1);
        assert_eq!(cg.graph.num_edges(), 0);
    }
}

#[cfg(test)]
mod edge_name_tests {
    use super::*;

    #[test]
    fn edge_names_follow_paper_notation() {
        let gate_in = edge_type(NodeType::Transistor, TerminalClass::Gate, false);
        assert_eq!(edge_type_name(gate_in), "net -> transistor_gate");
        let gate_out = edge_type(NodeType::Transistor, TerminalClass::Gate, true);
        assert_eq!(edge_type_name(gate_out), "transistor_gate -> net");
        let anode = edge_type(NodeType::Diode, TerminalClass::Anode, false);
        assert_eq!(edge_type_name(anode), "net -> diode_anode");
    }

    #[test]
    fn all_edge_type_names_are_unique() {
        let names: std::collections::HashSet<String> =
            (0..NUM_EDGE_TYPES).map(edge_type_name).collect();
        assert_eq!(names.len(), NUM_EDGE_TYPES);
    }
}
