//! Ensemble modelling for net parasitic capacitance (paper §IV,
//! Algorithm 2).
//!
//! A single model trained over the full 0.01 fF – 10 pF range treats small
//! capacitances as noise; the paper instead trains several models with
//! increasing maximum prediction values (`max_v` = 1 fF, 10 fF, 100 fF,
//! 10 pF) and, per net, keeps the highest-range model whose prediction
//! exceeds the next-lower range boundary.

use paragraph_netlist::Circuit;

use crate::graphbuild::CircuitGraph;
use crate::pipeline::{PreparedCircuit, TargetModel};
use crate::targets::Target;

/// The paper's `max_v` ladder: 1 fF, 10 fF, 100 fF, 10 pF.
pub const PAPER_MAX_V: [f64; 4] = [1e-15, 10e-15, 100e-15, 10e-12];

/// Error from assembling a [`CapEnsemble`] out of unsuitable members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleError {
    message: String,
}

impl std::fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EnsembleError {}

/// An ensemble of capacitance models with increasing `max_v`
/// (Algorithm 2).
#[derive(Debug, Clone)]
pub struct CapEnsemble {
    /// Member models, sorted by ascending `max_v`.
    models: Vec<TargetModel>,
}

impl CapEnsemble {
    /// Builds an ensemble from capacitance models; sorts members by
    /// `max_v` ascending.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two models are given, any model is not a CAP
    /// model, any lacks a `max_value`, or two share the same `max_value`.
    pub fn new(models: Vec<TargetModel>) -> Self {
        Self::try_new(models).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CapEnsemble::new`], for assembling ensembles from
    /// untrusted inputs (e.g. a directory of model snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`EnsembleError`] if fewer than two models are given, any
    /// model is not a CAP model, any lacks a `max_value`, or two members
    /// share the same `max_value` (which would make Algorithm 2's range
    /// boundaries ambiguous).
    pub fn try_new(mut models: Vec<TargetModel>) -> Result<Self, EnsembleError> {
        let err = |message: String| EnsembleError { message };
        if models.len() < 2 {
            return Err(err(format!(
                "an ensemble needs at least two models, got {}",
                models.len()
            )));
        }
        for m in &models {
            if m.target != Target::Cap {
                return Err(err(format!(
                    "ensemble members must be CAP models, found {}",
                    m.target
                )));
            }
            if m.max_value.is_none() {
                return Err(err("ensemble members must have max_v set".into()));
            }
        }
        models.sort_by(|a, b| {
            a.max_value
                .partial_cmp(&b.max_value)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for pair in models.windows(2) {
            if pair[0].max_value == pair[1].max_value {
                return Err(err(format!(
                    "duplicate ensemble range max_v = {:e}",
                    pair[0].max_value.expect("checked above")
                )));
            }
        }
        Ok(Self { models })
    }

    /// Trains the full Algorithm-2 ensemble — one CAP model per entry of
    /// `max_vs` — with all members training **concurrently** on the
    /// shared worker pool (via [`crate::train_models`]). `fit.seed` is
    /// XOR-perturbed per member exactly like the sequential recipe the
    /// bench binaries use, so a parallel ensemble matches a sequential
    /// one bit for bit.
    ///
    /// # Panics
    ///
    /// Panics like [`CapEnsemble::new`] if `max_vs` has fewer than two
    /// entries or duplicates.
    pub fn train(
        train: &[crate::PreparedCircuit],
        max_vs: &[f64],
        fit: &crate::FitConfig,
        norm: &crate::FeatureNorm,
    ) -> Self {
        let specs: Vec<crate::TrainSpec> = max_vs
            .iter()
            .enumerate()
            .map(|(i, &max_v)| {
                let mut member_fit = fit.clone();
                member_fit.seed ^= (i as u64 + 1) << 32;
                crate::TrainSpec {
                    target: Target::Cap,
                    max_value: Some(max_v),
                    fit: member_fit,
                }
            })
            .collect();
        let models = crate::train_models(train, &specs, norm)
            .into_iter()
            .map(|(model, _)| model)
            .collect();
        Self::new(models)
    }

    /// Member models, ascending `max_v`.
    pub fn members(&self) -> &[TargetModel] {
        &self.models
    }

    /// Algorithm 2 on a single net's per-model predictions (ascending
    /// `max_v` order): start from the smallest-range model and move up
    /// whenever a higher-range model predicts beyond the previous range.
    pub fn select(&self, per_model: &[f64]) -> f64 {
        per_model[self.select_index(per_model)]
    }

    /// Index of the member [`CapEnsemble::select`] picks — the same
    /// Algorithm-2 walk, exposed so observers can attribute a
    /// prediction to its ensemble member.
    pub fn select_index(&self, per_model: &[f64]) -> usize {
        assert_eq!(
            per_model.len(),
            self.models.len(),
            "one prediction per member"
        );
        let mut picked = 0;
        for (i, &pred) in per_model.iter().enumerate().skip(1) {
            let prev_max = self.models[i - 1].max_value.expect("max_v set");
            if pred > prev_max {
                picked = i;
            }
        }
        picked
    }

    /// Predicts every net's capacitance of a prepared circuit (indexed by
    /// net id, `None` on rails), applying Algorithm 2 per net.
    pub fn predict_graph(&self, circuit: &Circuit, cg: &CircuitGraph) -> Vec<Option<f64>> {
        let per_model: Vec<Vec<Option<f64>>> = self
            .models
            .iter()
            .map(|m| m.predict_graph(circuit, cg))
            .collect();
        (0..circuit.num_nets())
            .map(|net| {
                let preds: Option<Vec<f64>> = per_model.iter().map(|pm| pm[net]).collect();
                preds.map(|p| self.select(&p))
            })
            .collect()
    }

    /// Convenience for a [`PreparedCircuit`].
    pub fn predict(&self, pc: &PreparedCircuit) -> Vec<Option<f64>> {
        self.predict_graph(&pc.circuit, &pc.graph)
    }

    /// Predicts every net's capacitance of a fresh schematic. Each member
    /// builds and normalises its own graph (members may carry different
    /// feature normalisations), then Algorithm 2 selects per net.
    pub fn predict_circuit(&self, circuit: &Circuit) -> Vec<Option<f64>> {
        let per_model: Vec<Vec<Option<f64>>> = self
            .models
            .iter()
            .map(|m| m.predict_circuit(circuit))
            .collect();
        (0..circuit.num_nets())
            .map(|net| {
                let preds: Option<Vec<f64>> = per_model.iter().map(|pm| pm[net]).collect();
                preds.map(|p| self.select(&p))
            })
            .collect()
    }

    /// [`CapEnsemble::predict_circuit`] with a per-stage wall-clock
    /// breakdown summed over members, plus how many nets each member's
    /// prediction won (Algorithm-2 selection counts, ascending `max_v`
    /// order). Predictions are bitwise identical to the unprofiled
    /// path.
    pub fn predict_circuit_profiled(
        &self,
        circuit: &Circuit,
    ) -> (Vec<Option<f64>>, crate::PredictProfile, Vec<u64>) {
        let mut profile = crate::PredictProfile::default();
        let per_model: Vec<Vec<Option<f64>>> = self
            .models
            .iter()
            .map(|m| {
                let (preds, p) = m.predict_circuit_profiled(circuit);
                profile.graph_build_us += p.graph_build_us;
                profile.inference_us += p.inference_us;
                preds
            })
            .collect();
        let mut selected = vec![0u64; self.models.len()];
        let preds = (0..circuit.num_nets())
            .map(|net| {
                let preds: Option<Vec<f64>> = per_model.iter().map(|pm| pm[net]).collect();
                preds.map(|p| {
                    let i = self.select_index(&p);
                    selected[i] += 1;
                    p[i]
                })
            })
            .collect();
        (preds, profile, selected)
    }

    /// Predicts every net's capacitance for several fresh schematics at
    /// once. Each member runs one forward pass over the circuits'
    /// block-diagonal [`paragraph_gnn::GraphBatch`] union (via
    /// [`TargetModel::predict_circuits`]) instead of one pass per
    /// circuit; Algorithm 2 then selects per net, per circuit. The result
    /// equals calling [`CapEnsemble::predict_circuit`] on each circuit.
    pub fn predict_circuits(&self, circuits: &[&Circuit]) -> Vec<Vec<Option<f64>>> {
        if circuits.is_empty() {
            return Vec::new();
        }
        // per_model[m][c][net]
        let per_model: Vec<Vec<Vec<Option<f64>>>> = self
            .models
            .iter()
            .map(|m| m.predict_circuits(circuits))
            .collect();
        circuits
            .iter()
            .enumerate()
            .map(|(ci, circuit)| {
                (0..circuit.num_nets())
                    .map(|net| {
                        let preds: Option<Vec<f64>> =
                            per_model.iter().map(|pm| pm[ci][net]).collect();
                        preds.map(|p| self.select(&p))
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureNorm;
    use crate::pipeline::{FitConfig, GnnKind};
    use paragraph_layout::LayoutConfig;
    use paragraph_netlist::parse_spice;

    fn tiny_models(max_vs: &[f64]) -> Vec<TargetModel> {
        let c = parse_spice("mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n")
            .unwrap()
            .flatten()
            .unwrap();
        let prepared = vec![PreparedCircuit::new("t", c, &LayoutConfig::default())];
        max_vs
            .iter()
            .map(|&mv| {
                let mut fit = FitConfig::quick(GnnKind::Gcn);
                fit.epochs = 2;
                fit.embed_dim = 4;
                fit.layers = 1;
                TargetModel::train(
                    &prepared,
                    Target::Cap,
                    Some(mv),
                    fit,
                    &FeatureNorm::identity(),
                )
                .0
            })
            .collect()
    }

    #[test]
    fn members_sorted_ascending() {
        let models = tiny_models(&[10e-15, 1e-15, 100e-15]);
        let ens = CapEnsemble::new(models);
        let maxes: Vec<f64> = ens.members().iter().map(|m| m.max_value.unwrap()).collect();
        assert_eq!(maxes, vec![1e-15, 10e-15, 100e-15]);
    }

    /// The paper's worked example: if the 10 fF model predicts 2.5 fF
    /// (above the 1 fF model's max), it is preferred over the 1 fF model.
    #[test]
    fn algorithm2_paper_example() {
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15]));
        let picked = ens.select(&[0.4e-15, 2.5e-15]);
        assert_eq!(picked, 2.5e-15);
        // But if the 10 fF model predicts below 1 fF, keep the 1 fF model.
        let picked = ens.select(&[0.4e-15, 0.7e-15]);
        assert_eq!(picked, 0.4e-15);
    }

    #[test]
    fn selection_is_a_member_prediction() {
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15, 100e-15]));
        for preds in [
            [0.5e-15, 5e-15, 50e-15],
            [0.5e-15, 0.5e-15, 0.5e-15],
            [2e-15, 0.2e-15, 500e-15],
        ] {
            let p = ens.select(&preds);
            assert!(preds.contains(&p));
        }
    }

    #[test]
    fn higher_models_win_only_beyond_boundary() {
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15, 100e-15]));
        // Third model predicts 50 fF > 10 fF boundary: wins.
        assert_eq!(ens.select(&[0.1e-15, 0.2e-15, 50e-15]), 50e-15);
        // Third model predicts 5 fF < 10 fF boundary, second predicts
        // 3 fF > 1 fF: second wins.
        assert_eq!(ens.select(&[0.1e-15, 3e-15, 5e-15]), 3e-15);
    }

    #[test]
    #[should_panic(expected = "at least two models")]
    fn rejects_single_model() {
        let _ = CapEnsemble::new(tiny_models(&[1e-15]));
    }

    #[test]
    fn try_new_reports_bad_members() {
        assert!(CapEnsemble::try_new(tiny_models(&[1e-15])).is_err());
        // Duplicate ranges make Algorithm 2's boundaries ambiguous.
        let err = CapEnsemble::try_new(tiny_models(&[1e-15, 1e-15])).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // A member without max_v is rejected.
        let mut models = tiny_models(&[1e-15, 10e-15]);
        models[0].max_value = None;
        assert!(CapEnsemble::try_new(models).is_err());
    }

    /// Saving every member and reloading them must reproduce the
    /// ensemble's predictions bit-for-bit (members round-trip through
    /// JSON text).
    #[test]
    fn persistence_roundtrip_preserves_ensemble_predictions() {
        use crate::persist::SavedModel;
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15, 100e-15]));
        let c = parse_spice("mp o i vdd vdd pch\nmn o i vss vss nch\ncl o vss 2f\n.end\n")
            .unwrap()
            .flatten()
            .unwrap();
        let before = ens.predict_circuit(&c);
        let reloaded: Vec<TargetModel> = ens
            .members()
            .iter()
            .map(|m| {
                let json = SavedModel::from_model(m).to_json();
                SavedModel::from_json(&json).unwrap().into_model().unwrap()
            })
            .collect();
        let restored = CapEnsemble::try_new(reloaded).unwrap();
        let after = restored.predict_circuit(&c);
        assert_eq!(before, after, "reloaded ensemble drifted");
        assert!(
            before.iter().any(|p| p.is_some_and(|v| v > 0.0)),
            "expected at least one positive net prediction"
        );
    }

    /// Batched prediction over the block-diagonal union must equal the
    /// per-circuit path exactly — same graphs, same accumulation order,
    /// same floats.
    #[test]
    fn batched_prediction_matches_sequential() {
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15, 100e-15]));
        let sources = [
            "mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n",
            "mp1 x a vdd vdd pch nf=2\nmn1 x a vss vss nch\nr1 x y 5k\n.end\n",
            "mn1 d g s vss nch nfin=4\nc1 d vss 10f\n.end\n",
        ];
        let circuits: Vec<_> = sources
            .iter()
            .map(|s| parse_spice(s).unwrap().flatten().unwrap())
            .collect();
        let refs: Vec<&paragraph_netlist::Circuit> = circuits.iter().collect();
        let batched = ens.predict_circuits(&refs);
        assert_eq!(batched.len(), circuits.len());
        for (c, got) in circuits.iter().zip(&batched) {
            let sequential = ens.predict_circuit(c);
            assert_eq!(&sequential, got, "batched ensemble drifted");
        }
    }

    /// The profiled path runs the same call chain as the plain one —
    /// predictions must match bit for bit, and the selection counts
    /// must cover exactly the signal nets.
    #[test]
    fn profiled_prediction_matches_and_attributes_members() {
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15, 100e-15]));
        let c = parse_spice("mp o i vdd vdd pch nf=2\nmn o i vss vss nch\nr1 o f 10k\n.end\n")
            .unwrap()
            .flatten()
            .unwrap();
        let plain = ens.predict_circuit(&c);
        let (profiled, profile, selected) = ens.predict_circuit_profiled(&c);
        assert_eq!(plain, profiled, "profiling changed predictions");
        assert!(profile.graph_build_us >= 0.0 && profile.inference_us > 0.0);
        let nets_predicted = plain.iter().flatten().count() as u64;
        assert_eq!(selected.iter().sum::<u64>(), nets_predicted);
        assert_eq!(selected.len(), ens.members().len());
    }

    #[test]
    fn predict_covers_signal_nets() {
        let ens = CapEnsemble::new(tiny_models(&[1e-15, 10e-15]));
        let c = parse_spice("mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n")
            .unwrap()
            .flatten()
            .unwrap();
        let pc = PreparedCircuit::new("t", c, &LayoutConfig::default());
        let preds = ens.predict(&pc);
        let vdd = pc.circuit.find_net("vdd").unwrap();
        assert!(preds[vdd.0 as usize].is_none());
        let o = pc.circuit.find_net("o").unwrap();
        assert!(preds[o.0 as usize].unwrap() > 0.0);
    }
}
