//! # ParaGraph
//!
//! A from-scratch Rust reproduction of **"ParaGraph: Layout Parasitics and
//! Device Parameter Prediction using Graph Neural Networks"** (Ren, Kokai,
//! Turner, Ku — DAC 2020).
//!
//! Given only a schematic, ParaGraph predicts post-layout quantities:
//!
//! * net parasitic capacitance (`CAP`), and
//! * transistor layout parameters (`SA`/`DA`/`SP`/`DP` diffusion geometry
//!   and `LDE1..8` layout-dependent effects),
//!
//! by converting the circuit into a heterogeneous graph (devices *and*
//! nets are nodes; edge types encode device terminals — [`build_graph`]),
//! training a custom GNN combining GraphSage concatenation, RGCN
//! per-edge-type weights, and GAT attention
//! ([`paragraph_gnn::GnnKind::ParaGraph`], the paper's Algorithm 1), and
//! recovering accuracy across six decades of capacitance with an ensemble
//! of range-limited models ([`CapEnsemble`], Algorithm 2).
//!
//! # Quickstart
//!
//! ```
//! use paragraph::{
//!     fit_norm, normalize_circuits, FitConfig, GnnKind, PreparedCircuit, Target, TargetModel,
//! };
//! use paragraph_layout::LayoutConfig;
//! use paragraph_netlist::parse_spice;
//!
//! // 1. A (tiny) training circuit with synthesised layout ground truth.
//! let circuit = parse_spice("mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n")?
//!     .flatten()?;
//! let mut train = vec![PreparedCircuit::new("demo", circuit, &LayoutConfig::default())];
//! let norm = fit_norm(&train);
//! normalize_circuits(&mut train, &norm);
//!
//! // 2. Train a capacitance model (scaled-down settings).
//! let mut fit = FitConfig::quick(GnnKind::ParaGraph);
//! fit.epochs = 3;
//! let (model, _loss) = TargetModel::train(&train, Target::Cap, None, fit, &norm);
//!
//! // 3. Predict parasitics for a new schematic.
//! let fresh = parse_spice("mp z a vdd vdd pch\nmn z a vss vss nch\n.end\n")?.flatten()?;
//! let caps = model.predict_circuit(&fresh);
//! let z = fresh.find_net("z").unwrap();
//! assert!(caps[z.0 as usize].unwrap() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Crate layout
//!
//! The substrates live in sibling crates: [`paragraph_tensor`] (autograd),
//! [`paragraph_gnn`] (models), [`paragraph_netlist`] (schematics),
//! [`paragraph_layout`] (ground-truth synthesis), [`paragraph_ml`]
//! (baselines + metrics).

#![warn(missing_docs)]

mod baseline;
mod ensemble;
mod features;
mod graphbuild;
mod persist;
mod pipeline;
mod targets;

pub use baseline::BaselineStats;
pub use ensemble::{CapEnsemble, EnsembleError, PAPER_MAX_V};
pub use features::{device_features, net_features, FeatureNorm, NodeType};
pub use graphbuild::{
    build_graph, circuit_schema, edge_type, edge_type_name, raw_feature_rows, CircuitGraph,
    TerminalClass, EDGE_CLASSES, NUM_EDGE_TYPES,
};
pub use paragraph_exec::{CompileError, Precision};
pub use persist::{LoadModelError, SavedModel};
pub use pipeline::{
    evaluate_model, executor_default, fit_norm, normalize_circuits, precision_default,
    prepare_circuits, set_executor_default, set_precision_default, train_models, BaselineKind,
    BaselineModel, EvalPairs, EvalSummary, ExecutorMode, FitConfig, GnnKind, PredictProfile,
    PreparedCircuit, TargetModel, TrainSpec,
};
pub use targets::{label_node_types, target_labels, Target, TargetLabels};

/// Commonly used items.
pub mod prelude {
    pub use crate::{
        build_graph, evaluate_model, fit_norm, normalize_circuits, train_models, CapEnsemble,
        FitConfig, GnnKind, PreparedCircuit, Target, TargetModel, TrainSpec,
    };
}
