//! Prediction targets (paper Table I) and their label scaling.
//!
//! Capacitances span six orders of magnitude (0.01 fF – 10 pF), so every
//! target is regressed in log10 space; metrics are reported both in the
//! scaled space (R²) and in physical units (MAE, MAPE), mirroring the
//! paper's Figures 6–7.

use paragraph_layout::{DeviceGeom, LayoutTruth, NUM_LDE};
use paragraph_netlist::{Circuit, DeviceKind};
use serde::{Deserialize, Serialize};

use crate::features::NodeType;
use crate::graphbuild::CircuitGraph;

/// One of the thirteen quantities the paper predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Net parasitic capacitance (farads).
    Cap,
    /// Source diffusion area (m²).
    Sa,
    /// Drain diffusion area (m²).
    Da,
    /// Source diffusion perimeter (m).
    Sp,
    /// Drain diffusion perimeter (m).
    Dp,
    /// LDE parameter `1..=8` (metres).
    Lde(u8),
    /// Net parasitic resistance (ohms) — the paper's stated future work,
    /// implemented as an extension target.
    Res,
}

impl Target {
    /// All thirteen targets in the paper's Table I order.
    pub fn all() -> Vec<Target> {
        let mut v = vec![Target::Cap, Target::Sa, Target::Da, Target::Sp, Target::Dp];
        v.extend((1..=NUM_LDE as u8).map(Target::Lde));
        v
    }

    /// The paper's targets plus the resistance extension.
    pub fn all_extended() -> Vec<Target> {
        let mut v = Self::all();
        v.push(Target::Res);
        v
    }

    /// Display name (`CAP`, `SA`, ..., `LDE1`..`LDE8`).
    pub fn name(self) -> String {
        match self {
            Target::Cap => "CAP".into(),
            Target::Sa => "SA".into(),
            Target::Da => "DA".into(),
            Target::Sp => "SP".into(),
            Target::Dp => "DP".into(),
            Target::Lde(i) => format!("LDE{i}"),
            Target::Res => "RES".into(),
        }
    }

    /// Whether the target lives on net nodes (vs transistor nodes).
    pub fn on_nets(self) -> bool {
        matches!(self, Target::Cap | Target::Res)
    }

    /// Reference unit used for log scaling (1 fF for caps, 1e-15 m² for
    /// areas, 1 nm for lengths).
    fn reference(self) -> f64 {
        match self {
            Target::Cap => 1e-15,
            Target::Sa | Target::Da => 1e-15,
            Target::Sp | Target::Dp | Target::Lde(_) => 1e-9,
            Target::Res => 1.0,
        }
    }

    /// Physical value -> training-space value (log10 of the ratio to the
    /// reference unit).
    pub fn scale(self, physical: f64) -> f32 {
        (physical.max(1e-24) / self.reference()).log10() as f32
    }

    /// Training-space value -> physical value.
    pub fn unscale(self, scaled: f32) -> f64 {
        10f64.powf(scaled as f64) * self.reference()
    }

    /// Default linear-scale unit for range-limited capacitance models (the
    /// paper's widest range, 10 pF).
    pub const CAP_FULL_RANGE: f64 = 10e-12;

    /// Physical value -> training space, honouring a model's `max_v`.
    ///
    /// Range-limited capacitance models (`max_value = Some(..)`) regress
    /// *linearly*, normalised by `max_v` — the paper's §IV setting, where
    /// "any capacitance value less than 1 % of the maximum predicted value
    /// will be considered noise by the model", motivating the ensemble.
    /// With `max_value = None` (and for all device parameters) regression
    /// happens in log space, which is the better-behaved general-purpose
    /// default this library offers beyond the paper.
    pub fn scale_with(self, max_value: Option<f64>, physical: f64) -> f32 {
        match (self, max_value) {
            (Target::Cap, Some(unit)) => (physical / unit) as f32,
            _ => self.scale(physical),
        }
    }

    /// Training space -> physical value, honouring a model's `max_v`.
    /// Linear-range capacitance predictions are floored at an atto-scale
    /// epsilon (the linear head can go slightly negative).
    pub fn unscale_with(self, max_value: Option<f64>, scaled: f32) -> f64 {
        match (self, max_value) {
            (Target::Cap, Some(unit)) => (scaled as f64 * unit).max(1e-18),
            _ => self.unscale(scaled),
        }
    }

    /// Physical value of this target on a device, if applicable.
    pub fn of_geom(self, geom: &DeviceGeom) -> Option<f64> {
        match self {
            Target::Cap | Target::Res => None,
            Target::Sa => Some(geom.sa),
            Target::Da => Some(geom.da),
            Target::Sp => Some(geom.sp),
            Target::Dp => Some(geom.dp),
            Target::Lde(i) => geom.lde.get(i as usize - 1).copied(),
        }
    }

    /// FC-head depth the paper uses for this target (4 for CAP, 2 for
    /// device parameters).
    pub fn fc_layers(self) -> usize {
        if self.on_nets() {
            4
        } else {
            2
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Labels for one `(circuit, target)` pair.
#[derive(Debug, Clone, Default)]
pub struct TargetLabels {
    /// Global graph-node ids carrying labels.
    pub nodes: Vec<u32>,
    /// Scaled (log-space) labels, aligned with `nodes`.
    pub scaled: Vec<f32>,
    /// Physical-unit labels, aligned with `nodes`.
    pub physical: Vec<f64>,
}

impl TargetLabels {
    /// Number of labelled nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node carries a label.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Extracts the labels of `target` from layout ground truth.
///
/// `max_value` (physical units) drops larger labels — the paper's range
/// models ("data points with a ground truth larger than the maximum
/// predicted value are ignored during training").
pub fn target_labels(
    circuit: &Circuit,
    cg: &CircuitGraph,
    truth: &LayoutTruth,
    target: Target,
    max_value: Option<f64>,
) -> TargetLabels {
    let mut out = TargetLabels::default();
    let keep = |v: f64| max_value.map(|m| v <= m).unwrap_or(true);
    if target.on_nets() {
        let values = if target == Target::Res {
            &truth.net_res
        } else {
            &truth.net_cap
        };
        for (net_idx, node) in cg.net_node.iter().enumerate() {
            let (Some(node), Some(value)) = (node, values[net_idx]) else {
                continue;
            };
            if keep(value) {
                out.nodes.push(*node);
                out.scaled.push(target.scale_with(max_value, value));
                out.physical.push(value);
            }
        }
    } else {
        for (dev_idx, geom) in truth.geom.iter().enumerate() {
            let Some(geom) = geom else { continue };
            debug_assert!(matches!(
                circuit.devices()[dev_idx].kind,
                DeviceKind::Mosfet { .. }
            ));
            let Some(value) = target.of_geom(geom) else {
                continue;
            };
            if keep(value) {
                out.nodes.push(cg.device_node[dev_idx]);
                out.scaled.push(target.scale_with(max_value, value));
                out.physical.push(value);
            }
        }
    }
    out
}

/// The node type(s) a target's labelled nodes belong to — used by the
/// baselines to pick their input features.
pub fn label_node_types(target: Target) -> Vec<NodeType> {
    if target.on_nets() {
        vec![NodeType::Net]
    } else {
        vec![NodeType::Transistor, NodeType::TransistorThick]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphbuild::build_graph;
    use paragraph_layout::{extract, LayoutConfig};
    use paragraph_netlist::parse_spice;

    fn setup() -> (Circuit, CircuitGraph, LayoutTruth) {
        let c =
            parse_spice("mp out in vdd vdd pch nf=2\nmn out in vss vss nch\nr1 out fb 10k\n.end\n")
                .unwrap()
                .flatten()
                .unwrap();
        let cg = build_graph(&c);
        let truth = extract(&c, &LayoutConfig::default());
        (c, cg, truth)
    }

    #[test]
    fn thirteen_targets() {
        let all = Target::all();
        assert_eq!(all.len(), 13);
        assert_eq!(all[0].name(), "CAP");
        assert_eq!(all[12].name(), "LDE8");
    }

    #[test]
    fn scale_roundtrip() {
        for target in Target::all() {
            for v in [1e-18, 2.5e-15, 7.7e-12] {
                let back = target.unscale(target.scale(v));
                assert!((back - v).abs() / v < 1e-5, "{target}: {v} -> {back}");
            }
        }
    }

    #[test]
    fn cap_labels_cover_signal_nets() {
        let (c, cg, truth) = setup();
        let labels = target_labels(&c, &cg, &truth, Target::Cap, None);
        // in, out, fb are signal nets.
        assert_eq!(labels.len(), 3);
        assert!(labels.physical.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn device_labels_cover_mosfets_only() {
        let (c, cg, truth) = setup();
        for target in [Target::Sa, Target::Dp, Target::Lde(3)] {
            let labels = target_labels(&c, &cg, &truth, target, None);
            assert_eq!(labels.len(), 2, "{target}"); // resistor excluded
        }
    }

    #[test]
    fn max_value_filters_large_labels() {
        let (c, cg, truth) = setup();
        let all = target_labels(&c, &cg, &truth, Target::Cap, None);
        let median = {
            let mut v = all.physical.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let filtered = target_labels(&c, &cg, &truth, Target::Cap, Some(median));
        assert!(filtered.len() < all.len());
        assert!(filtered.physical.iter().all(|&v| v <= median));
    }

    #[test]
    fn fc_depth_follows_paper() {
        assert_eq!(Target::Cap.fc_layers(), 4);
        assert_eq!(Target::Sa.fc_layers(), 2);
        assert_eq!(Target::Lde(5).fc_layers(), 2);
    }

    #[test]
    fn scaled_labels_are_log10() {
        let v = 10e-15; // 10 fF
        assert!((Target::Cap.scale(v) - 1.0).abs() < 1e-6);
    }
}

#[cfg(test)]
mod resistance_target_tests {
    use super::*;
    use crate::graphbuild::build_graph;
    use paragraph_layout::{extract, LayoutConfig};
    use paragraph_netlist::parse_spice;

    #[test]
    fn res_is_an_extension_not_a_paper_target() {
        assert_eq!(Target::all().len(), 13);
        assert!(!Target::all().contains(&Target::Res));
        assert_eq!(Target::all_extended().len(), 14);
        assert_eq!(*Target::all_extended().last().unwrap(), Target::Res);
    }

    #[test]
    fn res_labels_live_on_nets() {
        let c = parse_spice("mp o i vdd vdd pch\nmn o i vss vss nch\n.end\n")
            .unwrap()
            .flatten()
            .unwrap();
        let cg = build_graph(&c);
        let truth = extract(&c, &LayoutConfig::default());
        let labels = target_labels(&c, &cg, &truth, Target::Res, None);
        assert_eq!(labels.len(), 2); // nets i, o
        assert!(labels.physical.iter().all(|&r| r > 0.0));
        // Log scaling in ohms.
        assert!((Target::Res.scale(100.0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn res_uses_log_scaling_even_with_max_value() {
        // Only CAP has the paper's linear range models.
        let v = 1234.0;
        assert_eq!(Target::Res.scale_with(Some(1e4), v), Target::Res.scale(v));
    }
}
