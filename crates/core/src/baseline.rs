//! Training-time baseline statistics, captured into the saved-model
//! artifact so a serving process can judge whether incoming traffic
//! still looks like the training distribution (drift / OOD detection).
//!
//! The statistics are computed over the **raw** (pre-normalisation)
//! feature rows of the training circuits — the same rows
//! [`crate::raw_feature_rows`] produces for a fresh schematic at serve
//! time, so baseline and live windows are directly comparable — plus
//! the physical label range each model (ensemble member) was trained
//! on.

use serde::{Deserialize, Serialize};

use crate::features::NodeType;
use crate::pipeline::PreparedCircuit;
use crate::targets::Target;

/// Per-feature training-set statistics plus the label range, stored in
/// [`crate::SavedModel`] and carried by [`crate::TargetModel`].
///
/// Indexing follows the graph schema: `mean[t][f]` is feature `f` of
/// node type `t` (see [`NodeType::ALL`]); node types absent from the
/// training set have empty inner vectors and `rows[t] == 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineStats {
    /// Per-type per-feature mean of the raw training rows.
    pub mean: Vec<Vec<f64>>,
    /// Per-type per-feature population standard deviation.
    pub std: Vec<Vec<f64>>,
    /// Per-type per-feature minimum observed in training.
    pub min: Vec<Vec<f64>>,
    /// Per-type per-feature maximum observed in training.
    pub max: Vec<Vec<f64>>,
    /// Training rows per node type.
    pub rows: Vec<u64>,
    /// Smallest physical label trained on (per ensemble member), if any
    /// labelled node existed.
    pub label_min: Option<f64>,
    /// Largest physical label trained on.
    pub label_max: Option<f64>,
    /// Number of labelled training nodes.
    pub labelled_nodes: u64,
}

impl BaselineStats {
    /// Computes statistics over the training circuits for a model of
    /// `target` trained with range cap `max_value` (the label range
    /// reflects the capped labels, so each ensemble member records its
    /// own range).
    pub fn compute(train: &[PreparedCircuit], target: Target, max_value: Option<f64>) -> Self {
        let num_types = NodeType::ALL.len();
        let mut count = vec![0u64; num_types];
        let mut sum: Vec<Vec<f64>> = vec![Vec::new(); num_types];
        let mut sum_sq: Vec<Vec<f64>> = vec![Vec::new(); num_types];
        let mut min: Vec<Vec<f64>> = vec![Vec::new(); num_types];
        let mut max: Vec<Vec<f64>> = vec![Vec::new(); num_types];
        for pc in train {
            for (t, rows) in pc.graph.raw_features().iter().enumerate() {
                for row in rows {
                    if sum[t].is_empty() {
                        sum[t] = vec![0.0; row.len()];
                        sum_sq[t] = vec![0.0; row.len()];
                        min[t] = vec![f64::INFINITY; row.len()];
                        max[t] = vec![f64::NEG_INFINITY; row.len()];
                    }
                    count[t] += 1;
                    for (f, &v) in row.iter().enumerate() {
                        let v = v as f64;
                        sum[t][f] += v;
                        sum_sq[t][f] += v * v;
                        min[t][f] = min[t][f].min(v);
                        max[t][f] = max[t][f].max(v);
                    }
                }
            }
        }
        let mut mean: Vec<Vec<f64>> = vec![Vec::new(); num_types];
        let mut std: Vec<Vec<f64>> = vec![Vec::new(); num_types];
        for t in 0..num_types {
            if count[t] == 0 {
                min[t].clear();
                max[t].clear();
                continue;
            }
            let n = count[t] as f64;
            mean[t] = sum[t].iter().map(|s| s / n).collect();
            std[t] = sum[t]
                .iter()
                .zip(&sum_sq[t])
                .map(|(s, sq)| (sq / n - (s / n) * (s / n)).max(0.0).sqrt())
                .collect();
        }

        let mut label_min = f64::INFINITY;
        let mut label_max = f64::NEG_INFINITY;
        let mut labelled_nodes = 0u64;
        for pc in train {
            let labels = pc.labels(target, max_value);
            labelled_nodes += labels.physical.len() as u64;
            for &v in &labels.physical {
                label_min = label_min.min(v);
                label_max = label_max.max(v);
            }
        }
        Self {
            mean,
            std,
            min,
            max,
            rows: count,
            label_min: (labelled_nodes > 0).then_some(label_min),
            label_max: (labelled_nodes > 0).then_some(label_max),
            labelled_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PreparedCircuit;
    use paragraph_layout::LayoutConfig;
    use paragraph_netlist::parse_spice;

    fn prepared(src: &str) -> PreparedCircuit {
        let c = parse_spice(src).unwrap().flatten().unwrap();
        PreparedCircuit::new("t", c, &LayoutConfig::default())
    }

    #[test]
    fn stats_cover_types_and_label_range() {
        let pcs = vec![
            prepared("mp o i vdd vdd pch nf=2\nmn o i vss vss nch\n.end\n"),
            prepared("mn1 d g s vss nch nfin=4\nr1 d x 10k\n.end\n"),
        ];
        let stats = BaselineStats::compute(&pcs, Target::Cap, None);
        let net = NodeType::Net.id() as usize;
        assert!(stats.rows[net] >= 5, "signal nets across both circuits");
        assert_eq!(stats.mean[net].len(), 1);
        assert!(stats.min[net][0] <= stats.mean[net][0]);
        assert!(stats.mean[net][0] <= stats.max[net][0]);
        assert!(stats.std[net][0] >= 0.0);
        // Transistor rows: 4 features each.
        let tr = NodeType::Transistor.id() as usize;
        assert_eq!(stats.mean[tr].len(), 4);
        assert!(stats.rows[tr] == 3);
        // Absent types stay empty.
        let bjt = NodeType::Bjt.id() as usize;
        assert_eq!(stats.rows[bjt], 0);
        assert!(stats.mean[bjt].is_empty() && stats.min[bjt].is_empty());
        // Labels: every signal net has a capacitance label.
        assert!(stats.labelled_nodes > 0);
        let (lo, hi) = (stats.label_min.unwrap(), stats.label_max.unwrap());
        assert!(lo > 0.0 && lo <= hi);
    }

    #[test]
    fn label_range_respects_max_value_cap() {
        let pcs = vec![prepared(
            "mp o i vdd vdd pch nf=4\nmn o i vss vss nch\nc1 o vss 90f\n.end\n",
        )];
        let unbounded = BaselineStats::compute(&pcs, Target::Cap, None);
        let capped = BaselineStats::compute(&pcs, Target::Cap, Some(1e-15));
        // The cap excludes large-capacitance labels, so the member's
        // recorded range shrinks (or the member sees fewer nodes).
        assert!(capped.labelled_nodes <= unbounded.labelled_nodes);
        if let (Some(c), Some(u)) = (capped.label_max, unbounded.label_max) {
            assert!(c <= u);
        }
        // Feature statistics are label-independent: identical.
        assert_eq!(capped.mean, unbounded.mean);
        assert_eq!(capped.std, unbounded.std);
    }

    #[test]
    fn empty_training_set_yields_empty_stats() {
        let stats = BaselineStats::compute(&[], Target::Cap, None);
        assert!(stats.rows.iter().all(|&r| r == 0));
        assert_eq!(stats.label_min, None);
        assert_eq!(stats.label_max, None);
        assert_eq!(stats.labelled_nodes, 0);
    }
}
