//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token trees (the build environment
//! has no `syn`/`quote`), covering the shapes this workspace derives on:
//!
//! * named-field structs (with `#[serde(skip)]` support),
//! * newtype and tuple structs,
//! * enums with unit, struct, and tuple variants.
//!
//! Representation follows serde's external conventions so snapshots stay
//! readable: named structs are objects, newtypes are transparent, unit
//! variants are strings, data variants are `{"Variant": ...}` objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// True when an attribute body (the `[...]` group) is `serde(skip)`.
fn attr_is_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes leading attributes, returning whether any was `#[serde(skip)]`.
fn eat_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        skip |= attr_is_skip(&g);
                    }
                    other => panic!("expected attribute body after '#', got {other:?}"),
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes a leading visibility modifier, if any.
fn eat_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    eat_attrs(&mut tokens);
    eat_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the offline serde derive");
    }
    match keyword.as_str() {
        "struct" => Input::Struct {
            name,
            shape: parse_struct_shape(&mut tokens),
        },
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body, got {other:?}"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body.stream()),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn parse_struct_shape(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Shape {
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("expected struct body, got {other:?}"),
    }
}

/// Parses `name: Type, ...` fields, tracking `#[serde(skip)]`. Commas
/// inside angle brackets or groups do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return fields;
        }
        let skip = eat_attrs(&mut tokens);
        eat_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, got {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field { name, skip });
    }
}

/// Skips one type expression, stopping after the field-separating comma
/// (or at end of stream).
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0_i32;
    for t in tokens.by_ref() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        eat_attrs(&mut tokens);
        eat_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return variants;
        }
        eat_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Trailing comma between variants.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
}

// ---------------------------------------------------------------------
// Code generation (as source text, parsed back into a TokenStream)
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => gen_named_to_object(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),")
                        }
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => {{\n\
                                 let mut outer = ::serde::value::Map::new();\n\
                                 outer.insert(\"{vn}\", {inner});\n\
                                 ::serde::Value::Object(outer)\n\
                                 }}",
                                binds = binds.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            let inner = gen_named_to_object(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut outer = ::serde::value::Map::new();\n\
                                 outer.insert(\"{vn}\", {inner});\n\
                                 ::serde::Value::Object(outer)\n\
                                 }}",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// `{access}{field}` for every non-skipped field into a Map expression.
fn gen_named_to_object(fields: &[Field], access: &str) -> String {
    let mut out = String::from("{\nlet mut m = ::serde::value::Map::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        out.push_str(&format!(
            "m.insert(\"{fname}\", ::serde::Serialize::to_value(&{access}{fname}));\n"
        ));
    }
    out.push_str("::serde::Value::Object(m)\n}");
    out
}

fn gen_deserialize(input: &Input) -> String {
    let body = match input {
        Input::Struct { name, shape } => match shape {
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
            Shape::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Shape::Tuple(n) => gen_tuple_from_array(name, *n, "v"),
            Shape::Named(fields) => gen_named_from_object(name, fields, "v"),
        },
        Input::Enum { name, variants } => gen_enum_from_value(name, variants),
    };
    let name = match input {
        Input::Struct { name, .. } | Input::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_tuple_from_array(ctor: &str, n: usize, source: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "{{\n\
         let items = {source}.as_array().ok_or_else(|| ::serde::Error::custom(\
         format!(\"expected array for `{ctor}`, got {{}}\", {source}.kind_name())))?;\n\
         if items.len() != {n} {{\n\
         return ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"expected {n} elements for `{ctor}`, got {{}}\", items.len())));\n\
         }}\n\
         ::std::result::Result::Ok({ctor}({items}))\n\
         }}",
        items = items.join(", ")
    )
}

fn gen_named_from_object(ctor: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!("{fname}: ::serde::de_field(obj, \"{fname}\")?,\n"));
        }
    }
    format!(
        "{{\n\
         let obj = {source}.as_object().ok_or_else(|| ::serde::Error::custom(\
         format!(\"expected object for `{ctor}`, got {{}}\", {source}.kind_name())))?;\n\
         ::std::result::Result::Ok({ctor} {{\n{inits}}})\n\
         }}"
    )
}

fn gen_enum_from_value(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            let body = match &v.shape {
                Shape::Unit => return None,
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                ),
                Shape::Tuple(n) => gen_tuple_from_array(&format!("{name}::{vn}"), *n, "inner"),
                Shape::Named(fields) => {
                    gen_named_from_object(&format!("{name}::{vn}"), fields, "inner")
                }
            };
            Some(format!("\"{vn}\" => {body},"))
        })
        .collect();
    format!(
        "match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n\
         {units}\n\
         other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
         }},\n\
         ::serde::Value::Object(outer) if outer.len() == 1 => {{\n\
         let (tag, inner) = outer.iter().next().expect(\"len checked\");\n\
         match tag.as_str() {{\n\
         {datas}\n\
         other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
         }}\n\
         }},\n\
         other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"expected `{name}` variant, got {{}}\", other.kind_name()))),\n\
         }}",
        units = unit_arms.join("\n"),
        datas = data_arms.join("\n"),
    )
}
