//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness shape with
//! simple wall-clock measurement: per benchmark, a warm-up, then timed
//! samples whose mean/min/max are printed. `--test` (as passed by
//! `cargo test --benches`) runs every closure exactly once; positional
//! CLI arguments filter benchmarks by substring, as with real criterion.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {} // --bench and friends: ignore
                a => filter = Some(a.to_owned()),
            }
        }
        Self {
            test_mode,
            filter,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        self.run_one(&id.into().label, sample_size, f);
    }

    fn run_one(&mut self, label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(label, &bencher.samples, self.test_mode);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Times the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one duration per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up, and calibrate iterations so one sample is >= ~1 ms.
        let mut iters_per_sample = 1_u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

/// Wraps a value to hide it from the optimiser.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn report(label: &str, samples: &[Duration], test_mode: bool) {
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    if samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label}: time [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            sample_size: 5,
        };
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("one", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("two", 42), &7, |b, &x| b.iter(|| x * 2));
            group.finish();
        }
        assert_eq!(ran, 1, "test mode runs exactly once");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("zzz".into()),
            sample_size: 5,
        };
        let mut ran = 0;
        c.bench_function("abc", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
    }
}
