//! Offline stand-in for `serde_json`: JSON text <-> the [`Value`] tree of
//! the serde stand-in, plus a [`json!`] literal macro.

#![warn(missing_docs)]

pub use serde::value::{to_json_text, Map, Number, Value};
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; `Result` kept for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(to_json_text(&value.to_value(), false))
}

/// Serialises `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(to_json_text(&value.to_value(), true))
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::value::parse_json_text(text)?;
    T::from_value(&value)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-like literal, interpolating Rust
/// expressions in value position.
///
/// ```
/// let v = serde_json::json!({"name": "x", "nums": [1, 2.5], "nested": {"ok": true}});
/// assert_eq!(v["nums"][1].as_f64(), Some(2.5));
/// ```
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- arrays: accumulate elements into [$($elems:expr,)*] -----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };

    // ----- objects: munch `"key": value` pairs into $map -----
    (@object $map:ident ()) => {};
    (@object $map:ident ($key:literal : null $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::Value::Null);
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : true $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::Value::Bool(true));
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : false $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::Value::Bool(false));
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::json_internal!([$($inner)*]));
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::json_internal!({$($inner)*}));
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : $value:expr , $($rest:tt)*)) => {
        $map.insert($key, $crate::json_internal!($value));
        $crate::json_internal!(@object $map ($($rest)*));
    };
    (@object $map:ident ($key:literal : $value:expr)) => {
        $map.insert($key, $crate::json_internal!($value));
    };

    // ----- entry points -----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([$($tt:tt)*]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)*))
    };
    ({$($tt:tt)*}) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal!(@object map ($($tt)*));
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_builds_nested_values() {
        let name = "amp1";
        let caps = [1.0_f64, 2.5];
        let v = json!({
            "circuit": name,
            "count": caps.len(),
            "rows": caps.iter().map(|&c| json!([c, c * 2.0])).collect::<Vec<_>>(),
            "nested": {"ok": true, "none": null},
            "empty_arr": [],
            "empty_obj": {},
        });
        assert_eq!(v["circuit"].as_str(), Some("amp1"));
        assert_eq!(v["count"].as_u64(), Some(2));
        assert_eq!(v["rows"][1][1].as_f64(), Some(5.0));
        assert_eq!(v["nested"]["ok"].as_bool(), Some(true));
        assert!(v["nested"]["none"].is_null());
        assert_eq!(v["empty_arr"].as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn string_roundtrip() {
        let v = json!({"a": [1, -2, 3.5], "b": "x"});
        let text = crate::to_string(&v).unwrap();
        let back: crate::Value = crate::from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = crate::to_string_pretty(&v).unwrap();
        let back2: crate::Value = crate::from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }
}
