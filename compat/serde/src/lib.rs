//! Offline stand-in for `serde`.
//!
//! The build environment has no route to a crates.io mirror, so this crate
//! supplies the serialisation machinery the workspace needs with zero
//! external dependencies. Unlike real serde's visitor architecture, both
//! traits go through an owned JSON-like [`Value`] tree — simpler, and
//! exactly sufficient for the JSON snapshot/report files this repo reads
//! and writes.
//!
//! The derive macros ([`Serialize`]/[`Deserialize`], re-exported from
//! `serde_derive`) mirror serde's external representation conventions:
//! named structs become objects, newtype structs are transparent, tuple
//! structs become arrays, unit enum variants become strings, and data
//! variants become single-key objects. `#[serde(skip)]` is honoured on
//! struct fields (skipped on write, defaulted on read).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

// ---------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------

/// Serialisation/deserialisation error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Wraps the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        Self {
            message: format!("field `{field}`: {}", self.message),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Reads field `key` of `map`, treating a missing key as JSON `null`
/// (so `Option` fields tolerate absence). Used by derived code.
///
/// # Errors
///
/// Propagates the field's deserialisation error, annotated with the name.
pub fn de_field<T: Deserialize>(map: &Map, key: &str) -> Result<T, Error> {
    let v = map.get(key).unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| e.in_field(key))
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Non-negative values normalise to `U` so structural
                // equality holds across a text round trip.
                if *self >= 0 {
                    Value::Number(Number::U(*self as u64))
                } else {
                    Value::Number(Number::I(*self as i64))
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(type_err("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n,
                    other => return Err(type_err("integer", other)),
                };
                let out = match *n {
                    Number::U(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    Number::I(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Number::F(f) if f.fract() == 0.0 && f >= <$t>::MIN as f64 && f <= <$t>::MAX as f64 => {
                        Ok(f as $t)
                    }
                    Number::F(f) => Err(Error::custom(format!("{f} is not a {}", stringify!($t)))),
                };
                out
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_err("array", other)),
        }
    }
}

macro_rules! de_tuple {
    ($($len:literal => ($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) if items.len() == $len => items,
                    Value::Array(items) => {
                        return Err(Error::custom(format!(
                            "expected array of {}, got {} elements", $len, items.len()
                        )))
                    }
                    other => return Err(type_err("array", other)),
                };
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    1 => (0 A)
    2 => (0 A, 1 B)
    3 => (0 A, 1 B, 2 C)
    4 => (0 A, 1 B, 2 C, 3 D)
}

fn type_err(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind_name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            u64::from_value(&18446744073709551615_u64.to_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(i32::from_value(&(-5_i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5e-15_f64.to_value()).unwrap(), 1.5e-15);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let t = ("w".to_string(), 3_usize, 4_usize, vec![1.0_f32, -2.5]);
        let back: (String, usize, usize, Vec<f32>) =
            Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn mismatches_error() {
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u32::from_value(&(-1_i64).to_value()).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
