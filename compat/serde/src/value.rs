//! The JSON-like value tree both traits go through, plus text
//! parsing/printing used by the `serde_json` facade.

use crate::Error;

/// A JSON number. Integers keep their exact representation so `u64`
/// seeds and ids survive the text round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Loses integer-ness but never magnitude beyond `f64` precision.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` at `key`, replacing any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes `key`, returning its value when it was present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Mutable lookup, inserting `Null` at `key` when absent.
    pub fn entry_or_null(&mut self, key: &str) -> &mut Value {
        if !self.entries.iter().any(|(k, _)| k == key) {
            self.entries.push((key.to_owned(), Value::Null));
        }
        let slot = self
            .entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .expect("just inserted");
        &mut slot.1
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Short type name for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entry map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; missing keys and non-objects index to `null`,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-range and non-arrays index to `null`.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Mutable member access. `null` auto-vivifies into an object and
    /// missing keys are inserted as `null`, matching `serde_json`.
    ///
    /// # Panics
    ///
    /// Panics when `self` is neither an object nor `null`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(map) => map.entry_or_null(key),
            other => panic!("cannot index {} with a string key", other.kind_name()),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    /// Mutable array element access.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an array or `idx` is out of range.
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[idx],
            other => panic!("cannot index {} with a usize", other.kind_name()),
        }
    }
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

/// Renders a value as compact (`pretty = false`) or 2-space-indented JSON.
pub fn to_json_text(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, depth + 1);
                write_value(out, item, pretty, depth + 1);
            }
            newline_indent(out, pretty, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, depth + 1);
                write_string(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, depth + 1);
            }
            newline_indent(out, pretty, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, depth: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        // Rust's shortest-roundtrip Display keeps `f64` bits exact across
        // print/parse; non-finite values have no JSON form and become null.
        Number::F(f) if f.is_finite() => out.push_str(&f.to_string()),
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] with a byte offset on malformed input.
pub fn parse_json_text(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Number::I(i),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::U(u),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| self.err("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip_preserves_bits() {
        let vals = [1.5e-15, -3.25, 1.0, 0.1, f64::MIN_POSITIVE, 12345.678e9];
        for v in vals {
            let text = to_json_text(&Value::Number(Number::F(v)), false);
            let back = parse_json_text(&text).unwrap();
            assert_eq!(
                back.as_f64().map(f64::to_bits),
                Some(v.to_bits()),
                "{v} via {text}"
            );
        }
        let text = to_json_text(&Value::Number(Number::U(u64::MAX)), false);
        assert_eq!(parse_json_text(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5, "x\ny", null, true], "b": {"c": []}}"#;
        let v = parse_json_text(src).unwrap();
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3].as_str(), Some("x\ny"));
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"].as_array().map(Vec::len), Some(0));
        let reprinted = to_json_text(&v, true);
        assert_eq!(parse_json_text(&reprinted).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1.2.3", "[] []"] {
            assert!(parse_json_text(bad).is_err(), "{bad}");
        }
    }
}
