//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no route to a crates.io mirror, so this crate
//! provides the subset of the `rand` 0.9 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random_range`],
//! [`Rng::random_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality
//! and deterministic, though its stream differs from upstream `StdRng`
//! (ChaCha12). Nothing in the workspace depends on upstream's exact
//! stream, only on determinism for a fixed seed.

#![warn(missing_docs)]

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the standard distribution of `T`
    /// (full integer range; `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types samplable by [`Rng::random`] (stand-in for the
/// `StandardUniform` distribution).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! std_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

std_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardUniform for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [0; 4].map(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0_u64..u64::MAX),
                b.random_range(0_u64..u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3_usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0_f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.random_range(-8_i32..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice untouched");
    }
}
