//! Offline stand-in for `proptest`.
//!
//! Runs each property over `cases` deterministic pseudo-random inputs and,
//! on failure, reports the inputs that broke it. No shrinking — the
//! failing case is printed as-is. Covered strategy surface: integer and
//! float ranges, `any::<T>()`, tuples, `prop_map`, `prop::collection::vec`,
//! and simple `"[class]{lo,hi}"` string patterns.

#![warn(missing_docs)]

/// Deterministic generator backing every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every test gets a stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325_u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// Strategy over `T`'s full domain.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Simple pattern strategy: `"[class]{lo,hi}"` with ranges (`a-z`),
/// literal characters, and `\n`/`\t`/`\\` escapes inside the class.
/// Any other pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            _ => (*self).to_owned(),
        }
    }
}

fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        match class[i] {
            '\\' if i + 1 < class.len() => {
                chars.push(match class[i + 1] {
                    'n' => '\n',
                    't' => '\t',
                    c => c,
                });
                i += 2;
            }
            c if i + 2 < class.len() && class[i + 1] == '-' => {
                let end = class[i + 2];
                for v in (c as u32)..=(end as u32) {
                    chars.extend(char::from_u32(v));
                }
                i += 3;
            }
            c => {
                chars.push(c);
                i += 1;
            }
        }
    }
    Some((chars, lo, hi))
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with random length in `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };

    /// Namespace mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation expansion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_body {
    { ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )* } => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", ");
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    $body
                }));
                if let ::std::result::Result::Err(cause) = outcome {
                    eprintln!(
                        "proptest {}: case {case}/{} failed with inputs: {inputs}",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t");
        for _ in 0..200 {
            let v = (3_usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5_f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let (a, b) = (1_u32..4, any::<u64>()).generate(&mut rng);
            assert!((1..4).contains(&a));
            let _ = b;
            let neg = (-18_i32..6).generate(&mut rng);
            assert!((-18..6).contains(&neg));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::deterministic("s");
        let strat = "[a-c0-1.\\n]{2,5}";
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc01.\n".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::deterministic("v");
        let strat = collection::vec(0.5_f64..100.0, 2..40).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = strat.generate(&mut rng);
            assert!((2..40).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 1_usize..10, seed in any::<u64>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert_eq!(seed, seed);
        }
    }
}
