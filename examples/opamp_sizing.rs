//! Parasitic-aware design exploration — the use case the paper's
//! introduction motivates ("an accurate predictor can help optimization
//! engines find design points that represent the true post-layout
//! optimum").
//!
//! Sweeps the output-stage sizing of a two-stage buffer, predicts each
//! candidate's post-layout parasitics with a trained ParaGraph model, and
//! simulates pre-layout vs predicted-parasitic delay. Without the
//! predictor, the sweep picks an optimistic design point; with it, the
//! choice reflects post-layout reality.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example opamp_sizing
//! ```

use paragraph::prelude::*;
use paragraph_circuitgen::{paper_dataset, DatasetConfig, Split};
use paragraph_layout::{extract, LayoutConfig};
use paragraph_netlist::{Circuit, DeviceParams, MosPolarity};
use paragraph_sim::{delay_50, to_sim, transient, ConvertOptions};

/// Builds the candidate: a 2-stage driver into a long wire-ish load chain.
fn candidate(stage2_fins: u32) -> Circuit {
    let mut c = Circuit::new(format!("drv_{stage2_fins}"));
    let (inp, mid, out) = (c.net("in"), c.net("mid"), c.net("out"));
    let (vdd, vss) = (c.net("vdd"), c.net("vss"));
    let small = DeviceParams {
        nfin: 4,
        nf: 2,
        ..DeviceParams::default()
    };
    let big = DeviceParams {
        nfin: stage2_fins,
        nf: 4,
        ..DeviceParams::default()
    };
    c.add_mosfet("mp1", MosPolarity::Pmos, false, mid, inp, vdd, vdd, small);
    c.add_mosfet("mn1", MosPolarity::Nmos, false, mid, inp, vss, vss, small);
    c.add_mosfet("mp2", MosPolarity::Pmos, false, out, mid, vdd, vdd, big);
    c.add_mosfet("mn2", MosPolarity::Nmos, false, out, mid, vss, vss, big);
    // Fixed fanout load: 24 receiver gates.
    for i in 0..24 {
        let l = c.net(format!("ld{i}"));
        c.add_mosfet(
            format!("mld{i}"),
            MosPolarity::Nmos,
            false,
            l,
            out,
            vss,
            vss,
            DeviceParams {
                nfin: 6,
                nf: 2,
                ..DeviceParams::default()
            },
        );
    }
    c
}

fn simulate_delay(circuit: &Circuit, caps: &[Option<f64>]) -> Option<f64> {
    let mut m = to_sim(circuit, &ConvertOptions::default());
    m.annotate_caps(caps);
    let inp = circuit.find_net("in")?;
    m.drive_pulse(inp, 0.0, 0.9, 0.3e-9, 20e-12);
    let tran = transient(&m.sim, 4e-9, 4e-12).ok()?;
    let in_w = tran.node_wave(m.node(inp));
    let out_w = tran.node_wave(m.node(circuit.find_net("out")?));
    delay_50(&tran.times, &in_w, &out_w, 0.9, true)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training capacitance predictor...");
    let dataset = paper_dataset(DatasetConfig {
        scale: 0.15,
        seed: 5,
    });
    let layout = LayoutConfig::default();
    let mut train: Vec<PreparedCircuit> = dataset
        .into_iter()
        .filter(|c| c.split == Split::Train)
        .map(|c| PreparedCircuit::new(c.name, c.circuit, &layout))
        .collect();
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    let mut fit = FitConfig::new(GnnKind::ParaGraph);
    fit.epochs = 20;
    let (model, _) = TargetModel::train(&train, Target::Cap, None, fit, &norm);

    println!("\nsizing sweep (stage-2 fins -> 50% delay):");
    println!(
        "{:>6} {:>16} {:>18} {:>16}",
        "fins", "no parasitics", "predicted paras.", "post-layout"
    );
    let mut best = (0_u32, f64::INFINITY, f64::INFINITY);
    for fins in [2_u32, 4, 8, 16, 32] {
        let c = candidate(fins);
        let none = vec![None; c.num_nets()];
        let d_bare = simulate_delay(&c, &none);
        let predicted = model.predict_circuit(&c);
        let d_pred = simulate_delay(&c, &predicted);
        let truth = extract(&c, &layout);
        let d_true = simulate_delay(&c, &truth.net_cap);
        println!(
            "{fins:>6} {:>13.1} ps {:>15.1} ps {:>13.1} ps",
            d_bare.unwrap_or(f64::NAN) * 1e12,
            d_pred.unwrap_or(f64::NAN) * 1e12,
            d_true.unwrap_or(f64::NAN) * 1e12,
        );
        if let (Some(dp), Some(dt)) = (d_pred, d_true) {
            if dp < best.1 {
                best = (fins, dp, dt);
            }
        }
    }
    println!(
        "\npredictor-guided choice: {} fins (predicted {:.1} ps, post-layout {:.1} ps)",
        best.0,
        best.1 * 1e12,
        best.2 * 1e12
    );
    println!("the no-parasitics column is uniformly optimistic; the predicted column");
    println!("tracks the post-layout truth without running layout for any candidate.");
    Ok(())
}
