//! Quickstart: parse a schematic, train a capacitance model on a small
//! synthetic dataset, and predict parasitics for an unseen circuit.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paragraph::prelude::*;
use paragraph_circuitgen::{paper_dataset, DatasetConfig, Split};
use paragraph_layout::LayoutConfig;
use paragraph_netlist::parse_spice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Generate a small training dataset --------------------------
    // (In a real deployment these would be your existing laid-out designs
    // with extracted parasitics; here the layout synthesiser provides the
    // ground truth.)
    println!("generating dataset & synthesising layouts...");
    let dataset = paper_dataset(DatasetConfig {
        scale: 0.15,
        seed: 7,
    });
    let layout = LayoutConfig::default();
    let mut train: Vec<PreparedCircuit> = dataset
        .into_iter()
        .filter(|c| c.split == Split::Train)
        .map(|c| PreparedCircuit::new(c.name, c.circuit, &layout))
        .collect();
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);

    // --- 2. Train a ParaGraph capacitance model ------------------------
    println!("training ParaGraph capacitance model...");
    let mut fit = FitConfig::new(GnnKind::ParaGraph);
    fit.epochs = 20;
    let (model, loss) = TargetModel::train(&train, Target::Cap, None, fit, &norm);
    println!("final training loss: {loss:.5}");

    // --- 3. Predict parasitics for a new schematic ---------------------
    let fresh = parse_spice(
        "* two-stage buffer\n\
         mp1 mid in vdd vdd pch l=16n nfin=6 nf=2\n\
         mn1 mid in vss vss nch l=16n nfin=3 nf=2\n\
         mp2 out mid vdd vdd pch l=16n nfin=12 nf=4\n\
         mn2 out mid vss vss nch l=16n nfin=6 nf=4\n\
         .end\n",
    )?
    .flatten()?;
    let caps = model.predict_circuit(&fresh);
    println!("\npredicted net parasitics:");
    for (i, net) in fresh.nets().iter().enumerate() {
        if let Some(c) = caps[i] {
            println!("  {:<6} {:8.3} fF", net.name, c * 1e15);
        }
    }
    Ok(())
}
