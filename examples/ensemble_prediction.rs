//! Ensemble modelling demo (paper §IV, Algorithm 2).
//!
//! Trains capacitance models at the paper's four `max_v` ranges, then
//! shows — net by net — which ensemble member Algorithm 2 selects and how
//! the ensemble fixes the wide-range model's small-capacitance failures.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ensemble_prediction
//! ```

use paragraph::prelude::*;
use paragraph::PAPER_MAX_V;
use paragraph_circuitgen::{paper_dataset, DatasetConfig, Split};
use paragraph_layout::LayoutConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating dataset...");
    let dataset = paper_dataset(DatasetConfig {
        scale: 0.2,
        seed: 11,
    });
    let layout = LayoutConfig::default();
    let mut train = Vec::new();
    let mut test = Vec::new();
    for c in dataset {
        let pc = PreparedCircuit::new(c.name, c.circuit, &layout);
        match c.split {
            Split::Train => train.push(pc),
            Split::Test => test.push(pc),
        }
    }
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    normalize_circuits(&mut test, &norm);

    println!("training {} range models...", PAPER_MAX_V.len());
    let mut members = Vec::new();
    for (i, &max_v) in PAPER_MAX_V.iter().enumerate() {
        let mut fit = FitConfig::new(GnnKind::ParaGraph);
        fit.epochs = 25;
        fit.seed = 100 + i as u64;
        let (m, _) = TargetModel::train(&train, Target::Cap, Some(max_v), fit, &norm);
        members.push(m);
    }
    let ensemble = CapEnsemble::new(members);

    // Show per-net selection on one test circuit.
    let pc = &test[0];
    let labels = pc.labels(Target::Cap, None);
    let per_member: Vec<Vec<(u32, f64)>> = ensemble
        .members()
        .iter()
        .map(|m| m.predict_nodes(pc, labels.nodes.clone()))
        .collect();

    println!(
        "\nper-net selection on '{}' (first 15 nets; columns are member predictions, fF):",
        pc.name
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "truth", "1fF", "10fF", "100fF", "10pF", "ensemble", "err"
    );
    let mut wide_errs = Vec::new();
    let mut ens_errs = Vec::new();
    for row in 0..labels.len() {
        let preds: Vec<f64> = per_member.iter().map(|pm| pm[row].1).collect();
        let selected = ensemble.select(&preds);
        let truth = labels.physical[row];
        let err = ((selected - truth) / truth).abs() * 100.0;
        wide_errs.push(((preds[3] - truth) / truth).abs() * 100.0);
        ens_errs.push(err);
        if row < 15 {
            println!(
                "{:>11.3}f {:>9.3}f {:>9.3}f {:>9.3}f {:>9.3}f {:>11.3}f {:>9.1}%",
                truth * 1e15,
                preds[0] * 1e15,
                preds[1] * 1e15,
                preds[2] * 1e15,
                preds[3] * 1e15,
                selected * 1e15,
                err,
            );
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean relative error over {} nets: wide(10pF)-only {:.1}% vs ensemble {:.1}%",
        ens_errs.len(),
        mean(&wide_errs),
        mean(&ens_errs)
    );
    println!("(the wide-range model treats sub-0.1% -of-max capacitances as noise;");
    println!(" Algorithm 2 recovers them with the low-range members.)");
    Ok(())
}
