//! Mini Table V: pre-layout simulation accuracy with different parasitic
//! annotations.
//!
//! Simulates one testbench four ways — no parasitics, designer estimate,
//! ParaGraph prediction, and extracted truth — and compares the delay /
//! slew / power metrics, showing how predicted parasitics close most of
//! the schematic-to-layout simulation gap.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pre_layout_simulation
//! ```

use paragraph::prelude::*;
use paragraph_circuitgen::{
    grow_chip, paper_dataset, ChipBuilder, DatasetConfig, Split, FAMILY_DIGITAL,
};
use paragraph_layout::{designer_estimate, extract, LayoutConfig};
use paragraph_sim::{average_power, delay_50, slew_10_90, to_sim, transient, ConvertOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a quick capacitance model.
    println!("training capacitance predictor...");
    let dataset = paper_dataset(DatasetConfig {
        scale: 0.15,
        seed: 3,
    });
    let layout = LayoutConfig::default();
    let mut train: Vec<PreparedCircuit> = dataset
        .into_iter()
        .filter(|c| c.split == Split::Train)
        .map(|c| PreparedCircuit::new(c.name, c.circuit, &layout))
        .collect();
    let norm = fit_norm(&train);
    normalize_circuits(&mut train, &norm);
    let mut fit = FitConfig::new(GnnKind::ParaGraph);
    fit.epochs = 20;
    let (model, _) = TargetModel::train(&train, Target::Cap, None, fit, &norm);

    // The design under test: a 5-stage buffer chain, embedded in chip
    // context so its wirelengths (and hence true parasitics) match what
    // the model saw in training — an isolated block would have
    // unrealistically short wires.
    let mut chip = ChipBuilder::new("dut", 777);
    grow_chip(&mut chip, FAMILY_DIGITAL, 8);
    let input = chip.fresh_net("in");
    let out = chip.buffer_chain(input, 5);
    let circuit = chip.into_circuit();
    let in_name = circuit.net_ref(input).name.clone();
    let out_name = circuit.net_ref(out).name.clone();

    // The four annotations.
    let truth = extract(&circuit, &layout);
    let none = vec![None; circuit.num_nets()];
    let designer = designer_estimate(&circuit, 42);
    let predicted = model.predict_circuit(&circuit);

    let run = |caps: &[Option<f64>]| -> Option<(f64, f64, f64)> {
        let mut m = to_sim(&circuit, &ConvertOptions::default());
        m.annotate_caps(caps);
        let inp = circuit.find_net(&in_name)?;
        m.drive_pulse(inp, 0.0, 0.9, 0.3e-9, 20e-12);
        let tran = transient(&m.sim, 5e-9, 5e-12).ok()?;
        let in_w = tran.node_wave(m.node(inp));
        let out_w = tran.node_wave(m.node(circuit.find_net(&out_name)?));
        let delay = delay_50(&tran.times, &in_w, &out_w, 0.9, false)?;
        let slew = slew_10_90(&tran.times, &out_w, 0.9, false)?;
        let power = average_power(0.9, &tran.source_current(m.vdd_source?));
        Some((delay, slew, power))
    };

    let reference = run(&truth.net_cap).expect("post-layout simulation");
    println!("\nmetric comparison on a 5-stage buffer chain (vs post-layout):");
    println!(
        "{:>22} {:>12} {:>12} {:>12} {:>10}",
        "annotation", "delay (ps)", "slew (ps)", "power (uW)", "avg err"
    );
    for (name, caps) in [
        ("post-layout (truth)", &truth.net_cap),
        ("no parasitics", &none),
        ("designer estimate", &designer),
        ("ParaGraph predicted", &predicted),
    ] {
        let Some((d, s, p)) = run(caps) else {
            println!("{name:>22} simulation failed");
            continue;
        };
        let err = (((d - reference.0) / reference.0).abs()
            + ((s - reference.1) / reference.1).abs()
            + ((p - reference.2) / reference.2).abs())
            / 3.0
            * 100.0;
        println!(
            "{name:>22} {:>12.1} {:>12.1} {:>12.2} {:>9.1}%",
            d * 1e12,
            s * 1e12,
            p * 1e6,
            err
        );
    }
    println!("\n(the ParaGraph row should sit closest to the post-layout reference.)");
    Ok(())
}
